//! SinglePass (Zhang, Tatti & Gionis, KDD 2023) — the streaming baseline.
//!
//! SinglePass trades information for speed: it keeps a single *champion*
//! tuple, streams the dataset in a predefined random order, and asks the
//! user to compare the champion against each challenger whose outcome is
//! not already implied by earlier answers. Crucially, "implied" is decided
//! by cheap **rule-based filters**, not by exact geometry (that is the
//! published algorithm's design point, and what the ISRL paper means by
//! "collecting less information"): we keep per-coordinate intervals
//! `[lo_i, hi_i]` bracketing the user's weights and use interval arithmetic
//! to test whether `u · (champion − challenger)` has a provable sign.
//! Interval bounds are far weaker than the true utility range, so most
//! comparisons on skyline data remain ambiguous — reproducing the paper's
//! signature observation: cheap rounds, but *hundreds* of them at d = 20.

use crate::interaction::{
    InteractionOutcome, InteractiveAlgorithm, Question, RoundTrace, Stopwatch, TraceMode,
};
use crate::telemetry::emit_round_event;
use crate::user::User;
use isrl_data::Dataset;
use isrl_geometry::{Halfspace, Region};
use isrl_linalg::vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-coordinate interval bounds on the user's utility vector, refined by
/// interval-arithmetic propagation of the answered half-spaces plus the
/// simplex constraint `Σu = 1`.
#[derive(Debug, Clone)]
struct IntervalBox {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl IntervalBox {
    fn full(d: usize) -> Self {
        Self {
            lo: vec![0.0; d],
            hi: vec![1.0; d],
        }
    }

    /// Interval evaluation of `v · u`: the (min, max) over the box.
    fn eval(&self, v: &[f64]) -> (f64, f64) {
        let mut min = 0.0;
        let mut max = 0.0;
        for ((&vi, &lo), &hi) in v.iter().zip(&self.lo).zip(&self.hi) {
            if vi >= 0.0 {
                min += vi * lo;
                max += vi * hi;
            } else {
                min += vi * hi;
                max += vi * lo;
            }
        }
        (min, max)
    }

    /// One propagation sweep of the constraint `v · u ≥ 0` plus the simplex
    /// equality. Returns `true` if any bound moved.
    fn propagate(&mut self, constraints: &[Vec<f64>]) -> bool {
        let d = self.lo.len();
        let mut changed = false;
        for v in constraints {
            // For each coordinate, isolate: v_i · u_i ≥ −Σ_{j≠i} v_j u_j.
            let (min_all, max_all) = self.eval(v);
            for (i, &vi) in v.iter().enumerate().take(d) {
                let (term_min, term_max) = if vi >= 0.0 {
                    (vi * self.lo[i], vi * self.hi[i])
                } else {
                    (vi * self.hi[i], vi * self.lo[i])
                };
                let rest_min = min_all - term_min;
                let rest_max = max_all - term_max;
                // u_i ≥ (−rest_max) / v_i when v_i > 0;
                // u_i ≤ (−rest_min) / v_i when v_i < 0 (after flipping).
                let _ = rest_min;
                if vi > 1e-12 {
                    let bound = -rest_max / vi;
                    if bound > self.lo[i] + 1e-12 {
                        self.lo[i] = bound.min(self.hi[i]);
                        changed = true;
                    }
                } else if vi < -1e-12 {
                    let bound = -rest_max / vi;
                    if bound < self.hi[i] - 1e-12 {
                        self.hi[i] = bound.max(self.lo[i]);
                        changed = true;
                    }
                }
            }
        }
        // Simplex constraint: u_i = 1 − Σ_{j≠i} u_j.
        let lo_sum: f64 = self.lo.iter().sum();
        let hi_sum: f64 = self.hi.iter().sum();
        for i in 0..d {
            let lo_bound = 1.0 - (hi_sum - self.hi[i]);
            let hi_bound = 1.0 - (lo_sum - self.lo[i]);
            if lo_bound > self.lo[i] + 1e-12 {
                self.lo[i] = lo_bound.min(self.hi[i]);
                changed = true;
            }
            if hi_bound < self.hi[i] - 1e-12 {
                self.hi[i] = hi_bound.max(self.lo[i]);
                changed = true;
            }
        }
        changed
    }

    fn diag(&self) -> f64 {
        vector::dist(&self.lo, &self.hi)
    }

    fn midpoint(&self) -> Vec<f64> {
        let mid = vector::midpoint(&self.lo, &self.hi);
        vector::normalize_sum(&mid).unwrap_or_else(|| vec![1.0 / mid.len() as f64; mid.len()])
    }
}

/// Configuration of [`SinglePass`].
#[derive(Debug, Clone)]
pub struct SinglePassConfig {
    /// Propagation sweeps over the stored constraints after each answer.
    pub propagation_sweeps: usize,
    /// Stop once the interval box diagonal is ≤ `2√d·ε` (the same
    /// geometric criterion AA uses, on the weaker interval representation).
    pub use_diag_stop: bool,
    /// Safety cap on questions.
    pub max_rounds: usize,
    /// RNG seed (stream order).
    pub seed: u64,
}

impl Default for SinglePassConfig {
    fn default() -> Self {
        Self {
            propagation_sweeps: 3,
            use_diag_stop: true,
            max_rounds: 5_000,
            seed: 0,
        }
    }
}

/// The streaming champion–challenger baseline.
#[derive(Debug)]
pub struct SinglePass {
    cfg: SinglePassConfig,
}

impl SinglePass {
    /// Creates the baseline.
    pub fn new(cfg: SinglePassConfig) -> Self {
        Self { cfg }
    }

    /// Default configuration with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self::new(SinglePassConfig {
            seed,
            ..SinglePassConfig::default()
        })
    }
}

impl InteractiveAlgorithm for SinglePass {
    fn name(&self) -> &'static str {
        "SinglePass"
    }

    fn reseed(&mut self, seed: u64) {
        self.cfg.seed = seed; // the stream order is re-derived per run
    }

    fn run(
        &mut self,
        data: &Dataset,
        user: &mut dyn User,
        eps: f64,
        trace_mode: TraceMode,
    ) -> InteractionOutcome {
        assert!(!data.is_empty(), "cannot interact over an empty dataset");
        let sw = Stopwatch::start();
        let d = data.dim();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(41));

        // Predefined random stream order.
        let mut order: Vec<usize> = (0..data.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }

        let mut boxx = IntervalBox::full(d);
        let mut constraints: Vec<Vec<f64>> = Vec::new(); // normals with v·u ≥ 0
        let mut region = Region::full(d); // trace/compatibility only
        let mut trace: Vec<RoundTrace> = Vec::new();
        let mut rounds = 0usize;
        let mut champion = order[0];
        let diag_threshold = 2.0 * (d as f64).sqrt() * eps;
        let mut truncated = false;

        let mut stopped_by_diag = false;
        'stream: for &challenger in &order[1..] {
            let round_started = sw.elapsed();
            if challenger == champion {
                continue;
            }
            let diff = vector::sub(data.point(champion), data.point(challenger));
            if vector::norm(&diff) <= 1e-12 {
                continue; // identical points, nothing to learn
            }
            // Rule-based filter: does interval arithmetic already decide it?
            let (min, max) = boxx.eval(&diff);
            if min >= 0.0 {
                continue; // champion provably wins
            }
            if max <= 0.0 {
                champion = challenger; // challenger provably wins
                continue;
            }

            // Ambiguous under the (weak) interval knowledge: ask.
            if rounds >= self.cfg.max_rounds {
                truncated = true;
                break 'stream;
            }
            let q = Question {
                i: champion,
                j: challenger,
            };
            let prefers_champ = user.prefers(data.point(champion), data.point(challenger));
            rounds += 1;
            let normal = if prefers_champ {
                diff
            } else {
                vector::scale(&diff, -1.0)
            };
            constraints.push(normal.clone());
            region.add(Halfspace::new(normal));
            if !prefers_champ {
                champion = challenger;
            }
            for _ in 0..self.cfg.propagation_sweeps {
                if !boxx.propagate(&constraints) {
                    break;
                }
            }
            emit_round_event(
                self.name(),
                rounds,
                Some(q),
                sw.elapsed(),
                (sw.elapsed() - round_started).as_secs_f64() * 1e3,
                None,
                None,
                None,
                &[],
            );
            if trace_mode.should_trace(rounds) {
                trace.push(RoundTrace::new(
                    rounds,
                    sw.elapsed(),
                    champion,
                    region.clone(),
                ));
            }
            if self.cfg.use_diag_stop && boxx.diag() <= diag_threshold {
                stopped_by_diag = true;
                break 'stream;
            }
        }

        // A completed pass makes the champion the exact stream favorite
        // (every skip was implied by sound interval bounds), so return it.
        // Only an early diagonal stop falls back to the interval midpoint's
        // favorite, mirroring AA's terminal rule on the weaker geometry.
        let point_index = if stopped_by_diag {
            let mid = boxx.midpoint();
            let mid_best = data.argmax_utility(&mid);
            if data.utility(mid_best, &mid) > data.utility(champion, &mid) {
                mid_best
            } else {
                champion
            }
        } else {
            champion
        };

        InteractionOutcome {
            point_index,
            rounds,
            elapsed: sw.elapsed(),
            trace,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regret::regret_ratio_of_index;
    use crate::user::SimulatedUser;
    use isrl_data::{generate, skyline, Distribution};

    fn small_data() -> Dataset {
        Dataset::from_points(
            vec![
                vec![1.0, 0.05],
                vec![0.85, 0.4],
                vec![0.6, 0.65],
                vec![0.4, 0.85],
                vec![0.05, 1.0],
            ],
            2,
        )
    }

    #[test]
    fn champion_has_low_regret() {
        let data = small_data();
        let mut algo = SinglePass::seeded(1);
        for w in [0.2, 0.5, 0.8] {
            let mut user = SimulatedUser::new(vec![w, 1.0 - w]);
            let out = algo.run(&data, &mut user, 0.1, TraceMode::Off);
            let regret = regret_ratio_of_index(&data, out.point_index, user.ground_truth());
            assert!(regret < 0.15, "regret {regret} at w {w}");
        }
    }

    #[test]
    fn asks_many_more_questions_than_the_rl_agents_would() {
        // The motivating observation of the paper: SinglePass's weak filters
        // leave most skyline comparisons ambiguous, so it asks a lot.
        let data = skyline(&generate(400, 4, Distribution::AntiCorrelated, 7));
        let mut algo = SinglePass::seeded(2);
        let mut user = SimulatedUser::new(vec![0.4, 0.3, 0.2, 0.1]);
        let out = algo.run(&data, &mut user, 0.05, TraceMode::Off);
        assert!(out.rounds >= 30, "expected many rounds, got {}", out.rounds);
    }

    #[test]
    fn interval_filter_is_sound() {
        // Every implied skip must agree with the ground truth: the final
        // champion of a full no-stop pass equals the true favorite.
        let data = skyline(&generate(120, 3, Distribution::AntiCorrelated, 9));
        let mut algo = SinglePass::new(SinglePassConfig {
            use_diag_stop: false,
            ..SinglePassConfig::default()
        });
        let truth = vec![0.5, 0.3, 0.2];
        let mut user = SimulatedUser::new(truth.clone());
        let out = algo.run(&data, &mut user, 0.05, TraceMode::Off);
        let regret = regret_ratio_of_index(&data, out.point_index, &truth);
        assert!(
            regret < 1e-9,
            "full pass must find the exact favorite, regret {regret}"
        );
    }

    #[test]
    fn questions_asked_equals_rounds() {
        let data = small_data();
        let mut algo = SinglePass::seeded(3);
        let mut user = SimulatedUser::new(vec![0.55, 0.45]);
        let out = algo.run(&data, &mut user, 0.1, TraceMode::Off);
        assert_eq!(user.questions_asked(), out.rounds);
    }

    #[test]
    fn round_cap_truncates() {
        let data = skyline(&generate(300, 3, Distribution::AntiCorrelated, 5));
        let mut algo = SinglePass::new(SinglePassConfig {
            max_rounds: 2,
            seed: 4,
            ..SinglePassConfig::default()
        });
        let mut user = SimulatedUser::new(vec![0.3, 0.4, 0.3]);
        let out = algo.run(&data, &mut user, 0.01, TraceMode::Off);
        assert!(out.rounds <= 2);
    }

    #[test]
    fn trace_mode_collects_entries() {
        let data = small_data();
        let mut algo = SinglePass::seeded(5);
        let mut user = SimulatedUser::new(vec![0.5, 0.5]);
        let out = algo.run(&data, &mut user, 0.05, TraceMode::PerRound);
        assert_eq!(out.trace.len(), out.rounds);
    }

    #[test]
    fn interval_box_eval_brackets_truth() {
        let mut b = IntervalBox::full(2);
        b.lo = vec![0.3, 0.5];
        b.hi = vec![0.5, 0.7];
        let v = [1.0, -2.0];
        let (min, max) = b.eval(&v);
        for u in [[0.3, 0.5], [0.5, 0.7], [0.4, 0.6]] {
            let val = u[0] * v[0] + u[1] * v[1];
            assert!(val >= min - 1e-12 && val <= max + 1e-12);
        }
    }

    #[test]
    fn propagation_tightens_with_simplex_constraint() {
        let mut b = IntervalBox::full(3);
        // u0 − u1 ≥ 0.2·(u0+u1+u2) approximated as plain halfspace
        // u0 ≥ u1 + 0.2 is not expressible homogeneously; use u0 − 3u1 ≥ 0,
        // which forces u1 ≤ 1/4 via u0 ≤ 1.
        let c = vec![vec![1.0, -3.0, 0.0]];
        for _ in 0..5 {
            if !b.propagate(&c) {
                break;
            }
        }
        assert!(
            b.hi[1] <= 1.0 / 3.0 + 1e-9,
            "u1 bounded by u0/3 ≤ 1/3: {}",
            b.hi[1]
        );
    }
}
