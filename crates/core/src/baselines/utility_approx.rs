//! UtilityApprox (Nanongkai et al., SIGMOD 2012) — the fake-point baseline.
//!
//! UtilityApprox designs *artificial* tuples tailored to bisect the user's
//! utility weights: comparing the axis tuple `e_i` against the constant
//! tuple `(c, …, c)` asks exactly "is `u_i ≥ c`?" (since `Σu = 1`), so each
//! answer halves one coordinate's interval. It converges in
//! `O(d · log(d/ε))` rounds but shows users tuples that do not exist in the
//! database — the drawback that motivated the UH family [5]. Included both
//! as a related-work baseline and as the clearest illustration of why
//! real-tuple interaction is the harder problem.

use crate::interaction::{
    InteractionOutcome, InteractiveAlgorithm, RoundTrace, Stopwatch, TraceMode,
};
use crate::telemetry::emit_round_event;
use crate::user::User;
use isrl_data::Dataset;
use isrl_geometry::{Halfspace, Region};
use isrl_linalg::vector;

/// Configuration of [`UtilityApprox`].
#[derive(Debug, Clone)]
pub struct UtilityApproxConfig {
    /// Stop when every coordinate interval is narrower than
    /// `width_factor · ε / d` (the bisection resolution target).
    pub width_factor: f64,
    /// Safety cap on rounds.
    pub max_rounds: usize,
}

impl Default for UtilityApproxConfig {
    fn default() -> Self {
        Self {
            width_factor: 2.0,
            max_rounds: 500,
        }
    }
}

/// The artificial-tuple bisection baseline.
#[derive(Debug, Default)]
pub struct UtilityApprox {
    cfg: UtilityApproxConfig,
}

impl UtilityApprox {
    /// Creates the baseline.
    pub fn new(cfg: UtilityApproxConfig) -> Self {
        Self { cfg }
    }
}

impl InteractiveAlgorithm for UtilityApprox {
    fn name(&self) -> &'static str {
        "UtilityApprox"
    }

    fn run(
        &mut self,
        data: &Dataset,
        user: &mut dyn User,
        eps: f64,
        trace_mode: TraceMode,
    ) -> InteractionOutcome {
        assert!(!data.is_empty(), "cannot interact over an empty dataset");
        let sw = Stopwatch::start();
        let d = data.dim();
        let mut lo = vec![0.0f64; d];
        let mut hi = vec![1.0f64; d];
        let mut region = Region::full(d);
        let mut trace: Vec<RoundTrace> = Vec::new();
        let mut rounds = 0usize;
        let target_width = self.cfg.width_factor * eps / d as f64;
        let mut truncated = false;

        loop {
            let round_started = sw.elapsed();
            // Bisect the widest coordinate interval.
            let widths: Vec<f64> = lo.iter().zip(&hi).map(|(l, h)| h - l).collect();
            let axis = vector::argmax(&widths);
            if widths[axis] <= target_width {
                break;
            }
            if rounds >= self.cfg.max_rounds {
                truncated = true;
                break;
            }
            let c = 0.5 * (lo[axis] + hi[axis]);
            // Fake tuples: p = e_axis, q = (c, …, c). Preferring p means
            // u·e_axis ≥ c·Σu, i.e. u_axis ≥ c.
            let mut p = vec![0.0; d];
            p[axis] = 1.0;
            let q = vec![c; d];
            let prefers_p = user.prefers(&p, &q);
            rounds += 1;
            if prefers_p {
                lo[axis] = c;
            } else {
                hi[axis] = c;
            }
            if let Some(h) = if prefers_p {
                Halfspace::preferring(&p, &q)
            } else {
                Halfspace::preferring(&q, &p)
            } {
                region.add(h);
            }
            emit_round_event(
                self.name(),
                rounds,
                None,
                sw.elapsed(),
                (sw.elapsed() - round_started).as_secs_f64() * 1e3,
                None,
                None,
                None,
                &[],
            );
            if trace_mode.should_trace(rounds) {
                let mid = middle_utility(&lo, &hi);
                trace.push(RoundTrace::new(
                    rounds,
                    sw.elapsed(),
                    data.argmax_utility(&mid),
                    region.clone(),
                ));
            }
        }

        let mid = middle_utility(&lo, &hi);
        InteractionOutcome {
            point_index: data.argmax_utility(&mid),
            rounds,
            elapsed: sw.elapsed(),
            trace,
            truncated,
        }
    }
}

/// Midpoint of the interval box, renormalized onto the simplex.
fn middle_utility(lo: &[f64], hi: &[f64]) -> Vec<f64> {
    let mid = vector::midpoint(lo, hi);
    vector::normalize_sum(&mid).unwrap_or_else(|| vec![1.0 / lo.len() as f64; lo.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regret::regret_ratio_of_index;
    use crate::user::SimulatedUser;

    fn small_data() -> Dataset {
        Dataset::from_points(
            vec![
                vec![1.0, 0.05],
                vec![0.85, 0.4],
                vec![0.6, 0.65],
                vec![0.4, 0.85],
                vec![0.05, 1.0],
            ],
            2,
        )
    }

    #[test]
    fn bisection_recovers_the_utility_vector() {
        let data = small_data();
        let mut algo = UtilityApprox::default();
        for w in [0.25, 0.5, 0.7] {
            let mut user = SimulatedUser::new(vec![w, 1.0 - w]);
            let out = algo.run(&data, &mut user, 0.1, TraceMode::Off);
            assert!(!out.truncated);
            let regret = regret_ratio_of_index(&data, out.point_index, user.ground_truth());
            assert!(regret < 0.1, "regret {regret} at w {w}");
        }
    }

    #[test]
    fn rounds_scale_logarithmically() {
        // d·log₂(d/(2ε/d))-ish: with d = 2 and ε = 0.1, roughly 2·log₂(10) ≈ 7.
        let data = small_data();
        let mut algo = UtilityApprox::default();
        let mut user = SimulatedUser::new(vec![0.37, 0.63]);
        let out = algo.run(&data, &mut user, 0.1, TraceMode::Off);
        assert!(out.rounds >= 4 && out.rounds <= 12, "rounds {}", out.rounds);
    }

    #[test]
    fn questions_use_fake_points() {
        // The distinguishing (and criticized) property: the tuples shown are
        // not from the dataset. We verify via a spying user.
        struct Spy {
            inner: SimulatedUser,
            saw_axis_tuple: bool,
        }
        impl User for Spy {
            fn prefers(&mut self, a: &[f64], b: &[f64]) -> bool {
                if a.iter().filter(|&&x| x == 0.0).count() == a.len() - 1 {
                    self.saw_axis_tuple = true;
                }
                self.inner.prefers(a, b)
            }
            fn questions_asked(&self) -> usize {
                self.inner.questions_asked()
            }
        }
        let data = small_data();
        let mut algo = UtilityApprox::default();
        let mut spy = Spy {
            inner: SimulatedUser::new(vec![0.5, 0.5]),
            saw_axis_tuple: false,
        };
        algo.run(&data, &mut spy, 0.1, TraceMode::Off);
        assert!(
            spy.saw_axis_tuple,
            "UtilityApprox must present artificial axis tuples"
        );
    }

    #[test]
    fn round_cap_truncates() {
        let data = small_data();
        let mut algo = UtilityApprox::new(UtilityApproxConfig {
            width_factor: 2.0,
            max_rounds: 1,
        });
        let mut user = SimulatedUser::new(vec![0.5, 0.5]);
        let out = algo.run(&data, &mut user, 0.001, TraceMode::Off);
        assert!(out.truncated);
    }
}
