//! Re-implementations of every baseline the paper evaluates against (§V)
//! plus the related-work fake-point algorithm.
//!
//! | Baseline | Source | Character |
//! |---|---|---|
//! | [`UhBaseline::random`] | Xie et al., SIGMOD 2019 | exact, random questions, polytope-heavy |
//! | [`UhBaseline::simplex`] | Xie et al., SIGMOD 2019 | exact, greedy "likely best" questions |
//! | [`SinglePass`] | Zhang et al., KDD 2023 | streaming champion–challenger, cheap rounds, many of them |
//! | [`UtilityApprox`] | Nanongkai et al., SIGMOD 2012 | artificial tuples, bisection |
//!
//! All are *short-term* question selectors — the property the paper's RL
//! agents are designed to beat.

mod single_pass;
mod uh;
mod utility_approx;

pub use single_pass::{SinglePass, SinglePassConfig};
pub use uh::{UhBaseline, UhConfig, UhStrategy};
pub use utility_approx::{UtilityApprox, UtilityApproxConfig};
