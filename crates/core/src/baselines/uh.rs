//! Shared machinery of the UH-family baselines (Xie et al., SIGMOD 2019).
//!
//! UH-Random and UH-Simplex maintain the utility range as an explicit
//! polyhedron — the same geometry EA uses — and differ only in *question
//! selection*: UH-Random picks a uniformly random pair of still-viable
//! candidates, UH-Simplex greedily picks the two candidates most likely to
//! be the user's favorite (highest utility w.r.t. the region's centroid;
//! see DESIGN.md §2 on this published-description-level reconstruction).
//! Both are *short-term* strategies: no learning, no look-ahead — exactly
//! the behaviour the paper's Figure 1 argument criticizes.

use crate::ea::{check_terminal, terminal_points};
use crate::interaction::{
    InteractionOutcome, InteractiveAlgorithm, Question, RoundTrace, Stopwatch, TraceMode,
};
use crate::telemetry::emit_round_event;
use crate::user::User;
use isrl_data::Dataset;
use isrl_geometry::{sampling, Halfspace, Polytope, Region, RegionLpCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Question-selection policy of a UH baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UhStrategy {
    /// Uniform random pair of candidates (UH-Random).
    Random,
    /// The two candidates with the highest centroid utility (UH-Simplex).
    Simplex,
}

/// Configuration shared by the UH baselines.
#[derive(Debug, Clone)]
pub struct UhConfig {
    /// Utility vectors sampled per round to identify candidate points.
    pub n_samples: usize,
    /// Safety cap on rounds.
    pub max_rounds: usize,
    /// RNG seed.
    pub seed: u64,
    /// Per-round budget of warm-started cut-test LPs spent screening
    /// candidate questions for ones whose hyperplane still cuts the
    /// region (0 disables the screen). A pair that fails the screen can
    /// still be asked — the original selection is the fallback — so this
    /// only steers the baselines away from wasted questions.
    pub cut_lp_checks: usize,
}

impl Default for UhConfig {
    fn default() -> Self {
        Self {
            n_samples: 100,
            max_rounds: 150,
            seed: 0,
            cut_lp_checks: 8,
        }
    }
}

/// A UH-family baseline.
#[derive(Debug)]
pub struct UhBaseline {
    strategy: UhStrategy,
    cfg: UhConfig,
    rng: StdRng,
}

impl UhBaseline {
    /// Creates a baseline with the given strategy.
    pub fn new(strategy: UhStrategy, cfg: UhConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(17));
        Self { strategy, cfg, rng }
    }

    /// UH-Random with default configuration.
    pub fn random(seed: u64) -> Self {
        Self::new(
            UhStrategy::Random,
            UhConfig {
                seed,
                ..UhConfig::default()
            },
        )
    }

    /// UH-Simplex with default configuration.
    pub fn simplex(seed: u64) -> Self {
        Self::new(
            UhStrategy::Simplex,
            UhConfig {
                seed,
                ..UhConfig::default()
            },
        )
    }

    /// Candidate points still able to be the user's favorite, found the
    /// same way EA builds `P_R` (sampled + extreme utility vectors).
    fn candidates(&mut self, data: &Dataset, region: &Region, vertices: &[Vec<f64>]) -> Vec<usize> {
        let mut samples = {
            let _s = isrl_obs::span("sampling");
            sampling::sample_region_rejection(
                region.dim(),
                region.halfspaces(),
                self.cfg.n_samples,
                self.cfg.n_samples * 10,
                &mut self.rng,
            )
        };
        if samples.len() < self.cfg.n_samples {
            let _s = isrl_obs::span("sampling");
            let need = self.cfg.n_samples - samples.len();
            samples.extend(sampling::sample_vertex_mixture(
                vertices,
                need,
                &mut self.rng,
            ));
        }
        samples.extend(vertices.iter().cloned());
        let _t = isrl_obs::span("top1");
        terminal_points(data, samples.iter())
    }

    /// `true` when the pair's hyperplane provably cuts the region, `None`
    /// when the screen is disabled / budget exhausted / pair degenerate.
    fn screen_cut(
        data: &Dataset,
        region: &Region,
        lp: &mut RegionLpCache,
        budget: &mut usize,
        a: usize,
        b: usize,
    ) -> Option<bool> {
        if *budget == 0 {
            return None;
        }
        let h = Halfspace::preferring(data.point(a), data.point(b))?;
        *budget -= 1;
        Some(region.is_cut_by_with(&h, lp))
    }

    fn select_question(
        &mut self,
        data: &Dataset,
        region: &Region,
        lp: &mut RegionLpCache,
        candidates: &[usize],
        centroid: &[f64],
        asked: &[(usize, usize)],
    ) -> Option<Question> {
        if candidates.len() < 2 {
            return None;
        }
        // Both strategies first look for a pair whose hyperplane still
        // cuts the region (a warm-started LP pair per check, bounded by
        // `cut_lp_checks`); an unscreened or screen-failing pair is kept
        // as the fallback so selection never comes back empty where the
        // unscreened policy would have picked something.
        let mut budget = self.cfg.cut_lp_checks;
        let mut fallback: Option<Question> = None;
        match self.strategy {
            UhStrategy::Random => {
                // Uniform random unasked pair; falls back to any pair when
                // every pair has been asked.
                for _ in 0..50 {
                    let a = candidates[self.rng.gen_range(0..candidates.len())];
                    let b = candidates[self.rng.gen_range(0..candidates.len())];
                    if a != b && !asked.contains(&(a.min(b), a.max(b))) {
                        let q = Question { i: a, j: b };
                        match Self::screen_cut(data, region, lp, &mut budget, a, b) {
                            Some(true) => return Some(q),
                            Some(false) => fallback.get_or_insert(q),
                            None => return Some(fallback.unwrap_or(q)),
                        };
                    }
                }
                Some(fallback.unwrap_or(Question {
                    i: candidates[0],
                    j: candidates[1],
                }))
            }
            UhStrategy::Simplex => {
                // Rank candidates by centroid utility; question the best
                // unasked pair among the leaders.
                let mut ranked: Vec<usize> = candidates.to_vec();
                ranked.sort_by(|&a, &b| {
                    data.utility(b, centroid)
                        .partial_cmp(&data.utility(a, centroid))
                        .expect("NaN utility")
                });
                for (ai, &a) in ranked.iter().enumerate() {
                    for &b in &ranked[ai + 1..] {
                        if !asked.contains(&(a.min(b), a.max(b))) {
                            let q = Question { i: a, j: b };
                            match Self::screen_cut(data, region, lp, &mut budget, a, b) {
                                Some(true) => return Some(q),
                                Some(false) => fallback.get_or_insert(q),
                                None => return Some(fallback.unwrap_or(q)),
                            };
                        }
                    }
                }
                Some(fallback.unwrap_or(Question {
                    i: ranked[0],
                    j: ranked[1],
                }))
            }
        }
    }
}

impl InteractiveAlgorithm for UhBaseline {
    fn name(&self) -> &'static str {
        match self.strategy {
            UhStrategy::Random => "UH-Random",
            UhStrategy::Simplex => "UH-Simplex",
        }
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    fn run(
        &mut self,
        data: &Dataset,
        user: &mut dyn User,
        eps: f64,
        trace_mode: TraceMode,
    ) -> InteractionOutcome {
        assert!(!data.is_empty(), "cannot interact over an empty dataset");
        let sw = Stopwatch::start();
        let mut region = Region::full(data.dim());
        // Warm-start bases for the per-round cut screens; carried across
        // rounds because the region only gains half-spaces within a run.
        let mut lp = RegionLpCache::new();
        let mut asked: Vec<(usize, usize)> = Vec::new();
        let mut trace: Vec<RoundTrace> = Vec::new();
        let mut rounds = 0usize;
        let mut last_best = 0usize;

        loop {
            let Some(polytope) = Polytope::from_region(&region) else {
                return InteractionOutcome {
                    point_index: last_best,
                    rounds,
                    elapsed: sw.elapsed(),
                    trace,
                    truncated: true,
                };
            };
            let vertices = polytope.vertices().to_vec();
            if let Some(p) = check_terminal(data, &vertices, eps) {
                return InteractionOutcome {
                    point_index: p,
                    rounds,
                    elapsed: sw.elapsed(),
                    trace,
                    truncated: false,
                };
            }
            let centroid = polytope.centroid();
            last_best = data.argmax_utility(&centroid);
            if rounds >= self.cfg.max_rounds {
                return InteractionOutcome {
                    point_index: last_best,
                    rounds,
                    elapsed: sw.elapsed(),
                    trace,
                    truncated: true,
                };
            }

            // Per-round phase collection (candidate sampling, top-1 scans)
            // whenever the trace or the event stream consumes it.
            let record = trace_mode.should_trace(rounds + 1) || isrl_obs::enabled();
            if record {
                isrl_obs::round_begin();
            }
            let round_started = sw.elapsed();

            let candidates = self.candidates(data, &region, &vertices);
            let Some(q) =
                self.select_question(data, &region, &mut lp, &candidates, &centroid, &asked)
            else {
                if record {
                    isrl_obs::round_end();
                }
                return InteractionOutcome {
                    point_index: last_best,
                    rounds,
                    elapsed: sw.elapsed(),
                    trace,
                    truncated: true,
                };
            };

            let prefers_i = user.prefers(data.point(q.i), data.point(q.j));
            let (win, lose) = if prefers_i { (q.i, q.j) } else { (q.j, q.i) };
            asked.push((q.i.min(q.j), q.i.max(q.j)));
            rounds += 1;
            if let Some(h) = Halfspace::preferring(data.point(win), data.point(lose)) {
                region.add(h);
            }
            if record {
                let phases = isrl_obs::round_end();
                emit_round_event(
                    self.name(),
                    rounds,
                    Some(q),
                    sw.elapsed(),
                    (sw.elapsed() - round_started).as_secs_f64() * 1e3,
                    Some(vertices.len()),
                    None,
                    None,
                    &phases,
                );
                if trace_mode.should_trace(rounds) {
                    let mut t = RoundTrace::new(rounds, sw.elapsed(), last_best, region.clone());
                    t.phases = phases;
                    t.vertex_count = Some(vertices.len());
                    trace.push(t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regret::regret_ratio_of_index;
    use crate::user::SimulatedUser;

    fn small_data() -> Dataset {
        Dataset::from_points(
            vec![
                vec![1.0, 0.05],
                vec![0.85, 0.4],
                vec![0.6, 0.65],
                vec![0.4, 0.85],
                vec![0.05, 1.0],
            ],
            2,
        )
    }

    #[test]
    fn uh_random_is_exact() {
        let data = small_data();
        let mut algo = UhBaseline::random(1);
        let eps = 0.1;
        for w in [0.2, 0.5, 0.75] {
            let mut user = SimulatedUser::new(vec![w, 1.0 - w]);
            let out = algo.run(&data, &mut user, eps, TraceMode::Off);
            assert!(!out.truncated);
            let regret = regret_ratio_of_index(&data, out.point_index, user.ground_truth());
            assert!(regret < eps, "regret {regret} at w {w}");
        }
    }

    #[test]
    fn uh_simplex_is_exact() {
        let data = small_data();
        let mut algo = UhBaseline::simplex(2);
        let eps = 0.1;
        let mut user = SimulatedUser::new(vec![0.4, 0.6]);
        let out = algo.run(&data, &mut user, eps, TraceMode::Off);
        assert!(!out.truncated);
        let regret = regret_ratio_of_index(&data, out.point_index, user.ground_truth());
        assert!(regret < eps);
    }

    #[test]
    fn names_distinguish_strategies() {
        assert_eq!(UhBaseline::random(0).name(), "UH-Random");
        assert_eq!(UhBaseline::simplex(0).name(), "UH-Simplex");
    }

    #[test]
    fn trace_is_collected_per_round() {
        let data = small_data();
        let mut algo = UhBaseline::random(3);
        let mut user = SimulatedUser::new(vec![0.3, 0.7]);
        let out = algo.run(&data, &mut user, 0.1, TraceMode::PerRound);
        assert_eq!(out.trace.len(), out.rounds);
    }

    #[test]
    fn round_cap_truncates() {
        let data = small_data();
        let mut algo = UhBaseline::new(
            UhStrategy::Random,
            UhConfig {
                n_samples: 20,
                max_rounds: 1,
                seed: 4,
                ..UhConfig::default()
            },
        );
        let mut user = SimulatedUser::new(vec![0.5, 0.5]);
        let out = algo.run(&data, &mut user, 0.001, TraceMode::Off);
        assert!(out.truncated, "eps this tight cannot finish in one round");
        assert_eq!(out.rounds, 1);
    }
}
