//! Checkpointing for trained agents.
//!
//! Training is the expensive offline step (the paper uses 10,000 simulated
//! users); serving interactions is cheap. This module serializes a trained
//! [`EaAgent`]/[`AaAgent`] — configuration plus Q-network parameters — into
//! a compact, versioned binary blob so policies can be trained once and
//! shipped.
//!
//! Format (little-endian): magic `ISRL`, format version `u16`, agent tag
//! `u8`, config fields, then the flat `f64` parameter vector of the main
//! network. The target network is reconstructed as a copy (they are synced
//! at the end of training).

use crate::aa::{AaAgent, AaConfig, PairGenConfig};
use crate::ea::{EaAgent, EaConfig, StateVariant};
use bytes::{Buf, BufMut};
use isrl_rl::EpsilonSchedule;

const MAGIC: &[u8; 4] = b"ISRL";
const VERSION: u16 = 1;
const TAG_EA: u8 = 1;
const TAG_AA: u8 = 2;

/// Errors from [`load_ea`]/[`load_aa`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Missing/incorrect magic bytes.
    BadMagic,
    /// A newer (or corrupt) format version.
    BadVersion(u16),
    /// The blob holds the other agent kind.
    WrongAgent {
        /// Tag found in the blob.
        found: u8,
        /// Tag the caller asked for.
        expected: u8,
    },
    /// Truncated or internally inconsistent payload.
    Truncated,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an ISRL checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::WrongAgent { found, expected } => {
                write!(f, "checkpoint holds agent tag {found}, expected {expected}")
            }
            CheckpointError::Truncated => write!(f, "truncated checkpoint"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn put_schedule(buf: &mut Vec<u8>, s: &EpsilonSchedule) {
    match *s {
        EpsilonSchedule::Constant(e) => {
            buf.put_u8(0);
            buf.put_f64_le(e);
        }
        EpsilonSchedule::Linear { start, end, steps } => {
            buf.put_u8(1);
            buf.put_f64_le(start);
            buf.put_f64_le(end);
            buf.put_u64_le(steps);
        }
    }
}

fn get_schedule(buf: &mut &[u8]) -> Result<EpsilonSchedule, CheckpointError> {
    if buf.remaining() < 1 {
        return Err(CheckpointError::Truncated);
    }
    match buf.get_u8() {
        0 => {
            if buf.remaining() < 8 {
                return Err(CheckpointError::Truncated);
            }
            Ok(EpsilonSchedule::constant(buf.get_f64_le()))
        }
        1 => {
            if buf.remaining() < 24 {
                return Err(CheckpointError::Truncated);
            }
            let start = buf.get_f64_le();
            let end = buf.get_f64_le();
            let steps = buf.get_u64_le();
            Ok(EpsilonSchedule::linear(start, end, steps))
        }
        _ => Err(CheckpointError::Truncated),
    }
}

fn put_params(buf: &mut Vec<u8>, params: &[f64]) {
    buf.put_u32_le(params.len() as u32);
    for &p in params {
        buf.put_f64_le(p);
    }
}

fn get_params(buf: &mut &[u8]) -> Result<Vec<f64>, CheckpointError> {
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len * 8 {
        return Err(CheckpointError::Truncated);
    }
    Ok((0..len).map(|_| buf.get_f64_le()).collect())
}

fn header(tag: u8) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(tag);
    buf
}

fn check_header(buf: &mut &[u8], expected_tag: u8) -> Result<(), CheckpointError> {
    if buf.remaining() < 7 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let tag = buf.get_u8();
    if tag != expected_tag {
        return Err(CheckpointError::WrongAgent {
            found: tag,
            expected: expected_tag,
        });
    }
    Ok(())
}

/// Serializes a (typically trained) EA agent.
pub fn save_ea(agent: &EaAgent) -> Vec<u8> {
    let cfg = agent.config();
    let mut buf = header(TAG_EA);
    buf.put_u32_le(agent.dim() as u32);
    buf.put_u32_le(cfg.m_e as u32);
    buf.put_f64_le(cfg.d_eps);
    buf.put_u8(match cfg.state_variant {
        StateVariant::Full => 0,
        StateVariant::RepsOnly => 1,
        StateVariant::SphereOnly => 2,
        StateVariant::StridedReps => 3,
    });
    buf.put_u32_le(cfg.m_h as u32);
    buf.put_u32_le(cfg.n_samples as u32);
    buf.put_f64_le(cfg.reward_c);
    buf.put_u32_le(cfg.max_rounds as u32);
    buf.put_f64_le(cfg.gamma);
    buf.put_f64_le(cfg.lr);
    buf.put_u32_le(cfg.replay_capacity as u32);
    buf.put_u32_le(cfg.batch_size as u32);
    buf.put_u64_le(cfg.target_sync_every);
    buf.put_u32_le(cfg.train_steps_per_round as u32);
    buf.put_u8(u8::from(cfg.use_adam));
    put_schedule(&mut buf, &cfg.epsilon);
    buf.put_u64_le(cfg.seed);
    buf.put_u64_le(agent.episodes_trained());
    put_params(&mut buf, &agent.dqn().network().to_flat());
    buf
}

/// Restores an EA agent from [`save_ea`] output.
pub fn load_ea(mut bytes: &[u8]) -> Result<EaAgent, CheckpointError> {
    let buf = &mut bytes;
    check_header(buf, TAG_EA)?;
    if buf.remaining() < 4 * 6 + 8 * 4 + 8 * 2 {
        return Err(CheckpointError::Truncated);
    }
    let dim = buf.get_u32_le() as usize;
    let cfg = EaConfig {
        m_e: buf.get_u32_le() as usize,
        d_eps: buf.get_f64_le(),
        state_variant: {
            if buf.remaining() < 1 {
                return Err(CheckpointError::Truncated);
            }
            match buf.get_u8() {
                0 => StateVariant::Full,
                1 => StateVariant::RepsOnly,
                2 => StateVariant::SphereOnly,
                3 => StateVariant::StridedReps,
                _ => return Err(CheckpointError::Truncated),
            }
        },
        m_h: buf.get_u32_le() as usize,
        n_samples: buf.get_u32_le() as usize,
        reward_c: buf.get_f64_le(),
        max_rounds: buf.get_u32_le() as usize,
        gamma: buf.get_f64_le(),
        lr: buf.get_f64_le(),
        replay_capacity: buf.get_u32_le() as usize,
        batch_size: buf.get_u32_le() as usize,
        target_sync_every: buf.get_u64_le(),
        train_steps_per_round: {
            if buf.remaining() < 5 {
                return Err(CheckpointError::Truncated);
            }
            buf.get_u32_le() as usize
        },
        use_adam: buf.get_u8() != 0,
        epsilon: get_schedule(buf)?,
        seed: {
            if buf.remaining() < 16 {
                return Err(CheckpointError::Truncated);
            }
            buf.get_u64_le()
        },
        // Not persisted: the geometry backend is a serving-time
        // speed/fidelity choice, not learned state (the state encoder's
        // shape is identical either way), so restored agents get the
        // default auto-by-dimension resolution. Override with
        // `EaAgent::set_geometry` (the CLI's `--geometry` flag does).
        geometry: isrl_geometry::GeometryBackend::default(),
        walk: isrl_geometry::WalkConfig::default(),
    };
    let episodes = buf.get_u64_le();
    let params = get_params(buf)?;
    let mut agent = EaAgent::new(dim, cfg);
    if params.len() != agent.dqn().network().n_params() {
        return Err(CheckpointError::Truncated);
    }
    agent.restore(&params, episodes);
    Ok(agent)
}

/// Serializes a (typically trained) AA agent.
pub fn save_aa(agent: &AaAgent) -> Vec<u8> {
    let cfg = agent.config();
    let mut buf = header(TAG_AA);
    buf.put_u32_le(agent.dim() as u32);
    buf.put_u32_le(cfg.m_h as u32);
    buf.put_u32_le(cfg.pair_gen.top_k as u32);
    buf.put_u32_le(cfg.pair_gen.random_pairs as u32);
    buf.put_u32_le(cfg.pair_gen.max_lp_checks as u32);
    buf.put_u8(u8::from(cfg.pair_gen.rank_by_distance));
    buf.put_f64_le(cfg.reward_c);
    buf.put_u32_le(cfg.max_rounds as u32);
    buf.put_f64_le(cfg.gamma);
    buf.put_f64_le(cfg.lr);
    buf.put_u32_le(cfg.replay_capacity as u32);
    buf.put_u32_le(cfg.batch_size as u32);
    buf.put_u64_le(cfg.target_sync_every);
    buf.put_u32_le(cfg.train_steps_per_round as u32);
    buf.put_u8(u8::from(cfg.use_adam));
    put_schedule(&mut buf, &cfg.epsilon);
    buf.put_u64_le(cfg.seed);
    buf.put_u64_le(agent.episodes_trained());
    put_params(&mut buf, &agent.dqn().network().to_flat());
    buf
}

/// Restores an AA agent from [`save_aa`] output.
pub fn load_aa(mut bytes: &[u8]) -> Result<AaAgent, CheckpointError> {
    let buf = &mut bytes;
    check_header(buf, TAG_AA)?;
    if buf.remaining() < 4 * 7 + 1 + 8 * 4 {
        return Err(CheckpointError::Truncated);
    }
    let dim = buf.get_u32_le() as usize;
    let cfg = AaConfig {
        m_h: buf.get_u32_le() as usize,
        pair_gen: PairGenConfig {
            top_k: buf.get_u32_le() as usize,
            random_pairs: buf.get_u32_le() as usize,
            max_lp_checks: buf.get_u32_le() as usize,
            rank_by_distance: buf.get_u8() != 0,
        },
        reward_c: buf.get_f64_le(),
        max_rounds: buf.get_u32_le() as usize,
        gamma: buf.get_f64_le(),
        lr: buf.get_f64_le(),
        replay_capacity: buf.get_u32_le() as usize,
        batch_size: buf.get_u32_le() as usize,
        target_sync_every: buf.get_u64_le(),
        train_steps_per_round: {
            if buf.remaining() < 5 {
                return Err(CheckpointError::Truncated);
            }
            buf.get_u32_le() as usize
        },
        use_adam: buf.get_u8() != 0,
        epsilon: get_schedule(buf)?,
        seed: {
            if buf.remaining() < 16 {
                return Err(CheckpointError::Truncated);
            }
            buf.get_u64_le()
        },
        // Not persisted: a pure speed knob with no effect on outcomes, so
        // restored agents always get the (default) warm path.
        warm_lp: true,
    };
    let episodes = buf.get_u64_le();
    let params = get_params(buf)?;
    let mut agent = AaAgent::new(dim, cfg);
    if params.len() != agent.dqn().network().n_params() {
        return Err(CheckpointError::Truncated);
    }
    agent.restore(&params, episodes);
    Ok(agent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::{InteractiveAlgorithm, TraceMode};
    use crate::runner::sample_users;
    use crate::user::SimulatedUser;
    use isrl_data::Dataset;

    fn data() -> Dataset {
        Dataset::from_points(
            vec![
                vec![1.0, 0.05],
                vec![0.85, 0.4],
                vec![0.6, 0.65],
                vec![0.4, 0.85],
                vec![0.05, 1.0],
            ],
            2,
        )
    }

    #[test]
    fn ea_round_trip_preserves_behavior() {
        let d = data();
        let mut agent = EaAgent::new(2, EaConfig::paper_default().with_seed(1));
        agent.train(&d, &sample_users(2, 8, 2), 0.1);
        let blob = save_ea(&agent);
        let mut restored = load_ea(&blob).unwrap();
        assert_eq!(restored.episodes_trained(), agent.episodes_trained());
        assert_eq!(
            restored.dqn().network().to_flat(),
            agent.dqn().network().to_flat(),
            "weights must round-trip bit-exactly"
        );
        // Same user, same questions, same answer (the internal RNG was
        // reconstructed from the same seed).
        let mut u1 = SimulatedUser::new(vec![0.4, 0.6]);
        let mut u2 = SimulatedUser::new(vec![0.4, 0.6]);
        let o1 = agent.run(&d, &mut u1, 0.1, TraceMode::Off);
        let o2 = restored.run(&d, &mut u2, 0.1, TraceMode::Off);
        assert_eq!(o1.point_index, o2.point_index);
    }

    #[test]
    fn aa_round_trip_preserves_weights_and_config() {
        let d = data();
        let mut cfg = AaConfig::paper_default().with_seed(3);
        cfg.pair_gen.rank_by_distance = false;
        let mut agent = AaAgent::new(2, cfg);
        agent.train(&d, &sample_users(2, 5, 4), 0.1);
        let blob = save_aa(&agent);
        let restored = load_aa(&blob).unwrap();
        assert!(!restored.config().pair_gen.rank_by_distance);
        assert_eq!(
            restored.dqn().network().to_flat(),
            agent.dqn().network().to_flat()
        );
    }

    #[test]
    fn wrong_magic_and_truncation_are_rejected() {
        assert!(matches!(load_ea(b"nope"), Err(CheckpointError::Truncated)));
        assert!(matches!(
            load_ea(b"XXXX\x01\x00\x01rest"),
            Err(CheckpointError::BadMagic)
        ));
        let agent = EaAgent::new(2, EaConfig::paper_default());
        let blob = save_ea(&agent);
        for cut in [8usize, blob.len() / 2, blob.len() - 3] {
            assert!(load_ea(&blob[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn agent_kinds_do_not_cross_load() {
        let ea = EaAgent::new(2, EaConfig::paper_default());
        let err = load_aa(&save_ea(&ea)).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::WrongAgent {
                found: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn linear_schedule_round_trips() {
        let mut cfg = EaConfig::paper_default();
        cfg.epsilon = EpsilonSchedule::linear(0.9, 0.1, 500);
        let agent = EaAgent::new(3, cfg);
        let restored = load_ea(&save_ea(&agent)).unwrap();
        assert_eq!(
            restored.config().epsilon,
            EpsilonSchedule::linear(0.9, 0.1, 500)
        );
    }
}
