//! Step-wise (inversion-of-control-free) interaction sessions for AA.
//!
//! [`crate::interaction::InteractiveAlgorithm::run`] drives a `User`
//! callback to completion — convenient for simulation, wrong for servers,
//! GUIs, or anything asynchronous. [`AaSession`] exposes the same
//! interaction as a state machine: ask [`AaSession::current_question`],
//! deliver the user's choice via [`AaSession::answer`], repeat until
//! [`AaSession::is_finished`], then read [`AaSession::recommendation`].

use super::{AaAgent, Observation};
use crate::interaction::{Question, Stopwatch};
use crate::telemetry::emit_round_event;
use isrl_data::Dataset;
use isrl_geometry::{Halfspace, Region, RegionGeometry};

/// An in-flight AA interaction. Holds the agent mutably (Q-network
/// evaluation shares its scratch buffers) and the dataset immutably.
pub struct AaSession<'a> {
    agent: &'a mut AaAgent,
    data: &'a Dataset,
    eps: f64,
    geom: RegionGeometry,
    asked: Vec<(usize, usize)>,
    obs: Observation,
    question: Option<(usize, Question)>,
    rounds: usize,
    sw: Stopwatch,
    truncated: bool,
}

impl AaAgent {
    /// Starts a step-wise interaction on `data` with threshold `eps`.
    ///
    /// # Panics
    /// Panics on dimension mismatch or an empty dataset.
    pub fn start_session<'a>(&'a mut self, data: &'a Dataset, eps: f64) -> AaSession<'a> {
        assert_eq!(data.dim(), self.dim, "dataset dimension mismatch");
        assert!(!data.is_empty(), "cannot interact over an empty dataset");
        let mut geom = RegionGeometry::summary_only(self.dim);
        geom.set_warm_lp(self.cfg.warm_lp);
        let asked = Vec::new();
        let obs = self
            .observe(data, &mut geom, eps, &asked)
            .expect("the full utility simplex is never empty");
        let mut session = AaSession {
            agent: self,
            data,
            eps,
            geom,
            asked,
            obs,
            question: None,
            rounds: 0,
            sw: Stopwatch::start(),
            truncated: false,
        };
        session.pick_question();
        session
    }
}

impl AaSession<'_> {
    /// Chooses the next greedy question from the current observation, or
    /// finishes the session when terminal / out of questions / capped.
    fn pick_question(&mut self) {
        self.question = None;
        if self.obs.terminal {
            return;
        }
        if self.obs.questions.is_empty() || self.rounds >= self.agent.cfg.max_rounds {
            self.truncated = true;
            return;
        }
        let (idx, _) = self
            .agent
            .dqn
            .best_action(&self.obs.state, &self.obs.action_feats);
        self.question = Some((idx, self.obs.questions[idx]));
    }

    /// The pending question, or `None` once the session is finished.
    pub fn current_question(&self) -> Option<Question> {
        self.question.map(|(_, q)| q)
    }

    /// The two points of the pending question, for display.
    pub fn current_points(&self) -> Option<(&[f64], &[f64])> {
        self.current_question()
            .map(|q| (self.data.point(q.i), self.data.point(q.j)))
    }

    /// Delivers the user's choice for the pending question (`true` = the
    /// first point is preferred) and advances the interaction.
    ///
    /// # Panics
    /// Panics if the session is already finished.
    pub fn answer(&mut self, prefers_first: bool) {
        let (_, q) = self
            .question
            .take()
            .expect("session is finished; no pending question");
        let record = isrl_obs::enabled();
        if record {
            isrl_obs::round_begin();
        }
        let round_started = self.sw.elapsed();
        let (win, lose) = if prefers_first {
            (q.i, q.j)
        } else {
            (q.j, q.i)
        };
        self.asked.push((q.i.min(q.j), q.i.max(q.j)));
        self.rounds += 1;
        if let Some(h) = Halfspace::preferring(self.data.point(win), self.data.point(lose)) {
            self.geom.add(h);
        }
        match self
            .agent
            .observe(self.data, &mut self.geom, self.eps, &self.asked)
        {
            None => {
                self.truncated = true; // region numerically collapsed
            }
            Some(next) => {
                self.obs = next;
                self.pick_question();
            }
        }
        if record {
            let phases = isrl_obs::round_end();
            emit_round_event(
                "AA",
                self.rounds,
                Some(q),
                self.sw.elapsed(),
                (self.sw.elapsed() - round_started).as_secs_f64() * 1e3,
                None,
                None,
                self.geom.volume_proxy(),
                &phases,
            );
        }
    }

    /// `true` once no further question will be asked.
    pub fn is_finished(&self) -> bool {
        self.question.is_none()
    }

    /// Questions answered so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Elapsed wall-clock time since the session started.
    pub fn elapsed(&self) -> std::time::Duration {
        self.sw.elapsed()
    }

    /// `true` when the session ended without certifying its stop condition.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The current (or final) recommendation: the top-1 tuple w.r.t. the
    /// outer rectangle's midpoint.
    pub fn recommendation(&self) -> usize {
        self.obs.best
    }

    /// The learned utility range so far (half-space view).
    pub fn region(&self) -> &Region {
        self.geom.region()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aa::AaConfig;
    use crate::interaction::{InteractiveAlgorithm, TraceMode};
    use crate::regret::regret_ratio_of_index;
    use crate::user::{SimulatedUser, User};
    use isrl_linalg::vector;

    fn data() -> Dataset {
        Dataset::from_points(
            vec![
                vec![1.0, 0.05],
                vec![0.85, 0.4],
                vec![0.6, 0.65],
                vec![0.4, 0.85],
                vec![0.05, 1.0],
            ],
            2,
        )
    }

    #[test]
    fn session_reaches_the_same_outcome_as_run() {
        let d = data();
        let truth = vec![0.35, 0.65];
        // Drive via the callback API…
        let mut agent1 = AaAgent::new(2, AaConfig::paper_default().with_seed(4));
        let mut user = SimulatedUser::new(truth.clone());
        let run_out = agent1.run(&d, &mut user, 0.1, TraceMode::Off);
        // …and via the step API with identical answers.
        let mut agent2 = AaAgent::new(2, AaConfig::paper_default().with_seed(4));
        let mut session = agent2.start_session(&d, 0.1);
        while let Some((p, q)) = session
            .current_points()
            .map(|(a, b)| (a.to_vec(), b.to_vec()))
        {
            session.answer(vector::dot(&truth, &p) >= vector::dot(&truth, &q));
        }
        assert!(session.is_finished());
        assert_eq!(session.rounds(), run_out.rounds);
        assert_eq!(session.recommendation(), run_out.point_index);
        assert_eq!(session.truncated(), run_out.truncated);
    }

    #[test]
    fn session_produces_a_valid_recommendation() {
        let d = data();
        let truth = vec![0.7, 0.3];
        let mut agent = AaAgent::new(2, AaConfig::paper_default().with_seed(5));
        let mut session = agent.start_session(&d, 0.1);
        let mut oracle = SimulatedUser::new(truth.clone());
        let mut guard = 0;
        while !session.is_finished() {
            let (p, q) = session
                .current_points()
                .map(|(a, b)| (a.to_vec(), b.to_vec()))
                .unwrap();
            session.answer(oracle.prefers(&p, &q));
            guard += 1;
            assert!(guard < 500, "session failed to finish");
        }
        let regret = regret_ratio_of_index(&d, session.recommendation(), &truth);
        assert!(regret <= 4.0 * 0.1 + 1e-9, "d²ε bound violated: {regret}");
        assert_eq!(session.region().len(), session.rounds());
    }

    #[test]
    #[should_panic(expected = "no pending question")]
    fn answering_a_finished_session_panics() {
        let d = Dataset::from_points(vec![vec![0.5, 0.5]], 2);
        let mut agent = AaAgent::new(2, AaConfig::paper_default().with_seed(6));
        let mut session = agent.start_session(&d, 0.5);
        assert!(session.is_finished(), "single point needs no questions");
        session.answer(true);
    }
}
