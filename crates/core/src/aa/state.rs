//! AA's fixed-length state encoding (§IV-C, "MDP: State").
//!
//! AA never materializes the utility range; it keeps the half-space set `H`
//! and summarizes `R = ⋂ h⁺ ∩ U` by two LP-computable shapes: the *inner
//! sphere* (largest ball inside `R` — the core) and the *outer rectangle*
//! (smallest axis-aligned box around `R` — the extent). The state vector is
//! `center ⊕ radius ⊕ e_min ⊕ e_max`, i.e. `3d + 1` numbers — independent of
//! how many questions have been answered.

use isrl_geometry::{Rectangle, Region, RegionGeometry, Sphere};

/// The two shapes summarizing a region for AA.
#[derive(Debug, Clone)]
pub struct AaSummary {
    /// The inner sphere (LP-maximal inscribed ball).
    pub sphere: Sphere,
    /// The outer rectangle `[e_min, e_max]`.
    pub rectangle: Rectangle,
}

impl AaSummary {
    /// Computes both shapes from the region's half-space set. Returns
    /// `None` when the region is (numerically) empty.
    pub fn from_region(region: &Region) -> Option<Self> {
        let sphere = region.inner_sphere()?;
        let rectangle = region.outer_rectangle()?;
        Some(Self { sphere, rectangle })
    }

    /// Like [`AaSummary::from_region`], but reads the geometry's per-cut
    /// summary cache: the sphere/rectangle LPs run at most once per answered
    /// question no matter how many consumers (state encoding, stop test,
    /// diagnostics, trace events) ask for them.
    pub fn from_geometry(geom: &mut RegionGeometry) -> Option<Self> {
        let sphere = geom.inner_sphere()?;
        let rectangle = geom.outer_rectangle()?;
        Some(Self { sphere, rectangle })
    }

    /// AA's stopping test (Lemma 9): rectangle diagonal ≤ `2√d·ε`.
    pub fn meets_stop_condition(&self, eps: f64) -> bool {
        self.rectangle.meets_stop_condition(eps)
    }

    /// The utility vector whose top-1 point AA returns: the rectangle
    /// midpoint (Algorithm 4, line 11).
    pub fn midpoint(&self) -> Vec<f64> {
        self.rectangle.midpoint()
    }

    /// The `3d + 1`-wide state vector.
    pub fn encode(&self) -> Vec<f64> {
        let mut v = self.sphere.encode();
        v.extend(self.rectangle.encode());
        v
    }

    /// Width of [`AaSummary::encode`] for dimensionality `d`.
    pub fn state_dim(d: usize) -> usize {
        3 * d + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrl_geometry::Halfspace;

    #[test]
    fn state_width_formula() {
        let s = AaSummary::from_region(&Region::full(4)).unwrap();
        assert_eq!(s.encode().len(), AaSummary::state_dim(4));
    }

    #[test]
    fn full_simplex_summary() {
        let s = AaSummary::from_region(&Region::full(3)).unwrap();
        assert!(!s.meets_stop_condition(0.1));
        // Midpoint of the unit box is the balanced vector before scaling.
        let mid = s.midpoint();
        for m in &mid {
            assert!((m - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn summary_shrinks_with_answers() {
        let mut r = Region::full(3);
        let before = AaSummary::from_region(&r).unwrap();
        r.add(Halfspace::new(vec![1.0, -1.0, 0.0]));
        r.add(Halfspace::new(vec![1.0, 0.0, -1.0]));
        let after = AaSummary::from_region(&r).unwrap();
        assert!(after.sphere.radius() < before.sphere.radius());
        assert!(after.rectangle.diagonal() < before.rectangle.diagonal());
    }

    #[test]
    fn empty_region_gives_none() {
        let mut r = Region::full(2);
        r.add(Halfspace::new(vec![0.5, -1.5]));
        r.add(Halfspace::new(vec![-1.5, 0.5]));
        assert!(AaSummary::from_region(&r).is_none());
    }

    #[test]
    fn stop_condition_fires_on_tiny_regions() {
        let mut r = Region::full(2);
        // Pin u0 into [0.50, 0.52] with two opposing near-parallel cuts.
        r.add(Halfspace::new(vec![0.50, -0.50])); // u0 ≥ u1  (u0 ≥ 0.5)
        r.add(Halfspace::new(vec![-0.48, 0.52])); // 0.52·u1 ≥ 0.48·u0 (u0 ≤ 0.52)
        let s = AaSummary::from_region(&r).unwrap();
        assert!(
            s.meets_stop_condition(0.05),
            "diag {}",
            s.rectangle.diagonal()
        );
        assert!(!s.meets_stop_condition(0.001));
    }
}
