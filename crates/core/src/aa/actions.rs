//! AA's restricted action space (§IV-C, "MDP: Action").
//!
//! The ideal question's hyperplane halves the utility range; lacking exact
//! geometry, AA prefers hyperplanes passing close to the inner sphere's
//! center and keeps only pairs whose hyperplane genuinely cuts `R` on both
//! sides (Lemma 8, verified by the strict-feasibility LP).
//!
//! Candidate generation over all `O(n²)` pairs is infeasible at n = 10⁵; as
//! documented in DESIGN.md §2 we enumerate pairs among the top-K tuples by
//! utility w.r.t. the sphere center — exactly the tuples whose top-1 regions
//! surround the center, so their mutual hyperplanes pass nearby — plus a
//! band of random pairs for diversity, then rank by center distance and
//! LP-validate in order until `m_h` survive.

use crate::interaction::Question;
use isrl_data::Dataset;
use isrl_geometry::{Halfspace, Region, RegionLpCache};
use rand::Rng;

/// Tuning knobs for [`candidate_pairs`].
#[derive(Debug, Clone, Copy)]
pub struct PairGenConfig {
    /// Number of top-utility tuples whose mutual pairs are enumerated.
    pub top_k: usize,
    /// Extra random pairs mixed in for diversity.
    pub random_pairs: usize,
    /// Cap on LP validations per round (cost control).
    pub max_lp_checks: usize,
    /// Rank candidates by distance to the sphere center (the paper's
    /// heuristic). `false` shuffles candidates instead — the ablation knob
    /// that isolates what the inner-sphere ranking buys.
    pub rank_by_distance: bool,
}

impl Default for PairGenConfig {
    fn default() -> Self {
        Self {
            top_k: 20,
            random_pairs: 20,
            max_lp_checks: 24,
            rank_by_distance: true,
        }
    }
}

/// Builds up to `m_h` validated questions: hyperplanes near the sphere
/// center, both sides of each still strictly feasible within the region.
/// `asked` pairs (either orientation) are skipped. May return fewer than
/// `m_h` — possibly none, which signals that no available question can
/// narrow `R` any further.
///
/// `pool` is an optional set of utility vectors sampled from the region
/// (e.g. by hit-and-run from the sphere center); when non-empty it serves
/// as a cheap O(|pool|·d) pre-filter — a hyperplane that leaves the whole
/// pool on one side almost certainly fails the LP cut test, so the LP is
/// never run for it. This keeps the per-round LP count near `2·m_h` even
/// in high dimension.
///
/// `lp_cache`, when supplied, warm-starts the per-candidate cut-test LPs
/// from one candidate to the next (and across rounds) — the problems
/// differ by a single tail row, so the carried basis usually survives with
/// a pivot or two of repair.
#[allow(clippy::too_many_arguments)] // mirrors the paper's question-generation inputs
pub fn candidate_pairs<R: Rng + ?Sized>(
    data: &Dataset,
    region: &Region,
    center: &[f64],
    m_h: usize,
    asked: &[(usize, usize)],
    pool: &[Vec<f64>],
    cfg: PairGenConfig,
    rng: &mut R,
    mut lp_cache: Option<&mut RegionLpCache>,
) -> Vec<Question> {
    let n = data.len();
    if n < 2 || m_h == 0 {
        return Vec::new();
    }
    let normalized = |a: usize, b: usize| if a < b { (a, b) } else { (b, a) };

    // Top-K tuples by utility w.r.t. the center: one linear pass over the
    // point buffer for all scores, then an O(n) selection — versus the old
    // comparator that recomputed `d`-dot products per comparison.
    let k = cfg.top_k.min(n);
    let mut utils: Vec<f64> = Vec::new();
    data.utilities_into(center, &mut utils);
    let mut order: Vec<usize> = (0..n).collect();
    let by_desc = |&a: &usize, &b: &usize| utils[b].partial_cmp(&utils[a]).expect("NaN utility");
    if 0 < k && k < n {
        order.select_nth_unstable_by(k - 1, by_desc);
    }
    order[..k].sort_unstable_by(by_desc);
    let top = &order[..k];

    // Assemble unique unasked candidate pairs.
    let mut cands: Vec<(usize, usize)> = Vec::with_capacity(k * (k - 1) / 2 + cfg.random_pairs);
    for (ai, &a) in top.iter().enumerate() {
        for &b in &top[ai + 1..] {
            let key = normalized(a, b);
            if !asked.contains(&key) {
                cands.push(key);
            }
        }
    }
    for _ in 0..cfg.random_pairs {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let key = normalized(a, b);
            if !asked.contains(&key) && !cands.contains(&key) {
                cands.push(key);
            }
        }
    }

    // Rank by distance from the center to the pair's hyperplane (or
    // shuffle, in the ablation configuration).
    let mut scored: Vec<(f64, usize, usize)> = cands
        .into_iter()
        .filter_map(|(a, b)| {
            let h = Halfspace::preferring(data.point(a), data.point(b))?;
            Some((h.distance(center), a, b))
        })
        .collect();
    if cfg.rank_by_distance {
        scored.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("NaN distance"));
    } else {
        for i in (1..scored.len()).rev() {
            scored.swap(i, rng.gen_range(0..=i));
        }
    }

    // Pool pre-filter, then LP validation (Lemma 8's non-degeneracy
    // condition) in order, under a per-round LP budget.
    let splits_pool = |h: &Halfspace| {
        if pool.is_empty() {
            return true; // no pool: fall through to the LP
        }
        let mut pos = false;
        let mut neg = false;
        for u in pool {
            let v = h.eval(u);
            if v > 0.0 {
                pos = true;
            } else if v < 0.0 {
                neg = true;
            }
            if pos && neg {
                return true;
            }
        }
        false
    };
    let mut out = Vec::with_capacity(m_h);
    let mut lp_budget = cfg.max_lp_checks;
    for (_, a, b) in scored {
        if out.len() >= m_h || lp_budget == 0 {
            break;
        }
        let Some(h) = Halfspace::preferring(data.point(a), data.point(b)) else {
            continue;
        };
        if !splits_pool(&h) {
            continue;
        }
        lp_budget -= 1;
        let cuts = match lp_cache.as_deref_mut() {
            Some(cache) => region.is_cut_by_with(&h, cache),
            None => region.is_cut_by(&h),
        };
        if cuts {
            out.push(Question { i: a, j: b });
        }
    }
    out
}

/// Action features for the Q-network: the two points concatenated (`2d`),
/// identical in layout to EA's encoding.
pub fn encode_question(data: &Dataset, q: Question) -> Vec<f64> {
    crate::ea::encode_question(data, q)
}

/// Distance from `center` to the hyperplane of pair `(i, j)` — exposed for
/// tests and the ablation benches.
pub fn hyperplane_distance(data: &Dataset, q: Question, center: &[f64]) -> Option<f64> {
    Halfspace::preferring(data.point(q.i), data.point(q.j)).map(|h| h.distance(center))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn anti_chain() -> Dataset {
        Dataset::from_points(
            vec![
                vec![1.0, 0.05],
                vec![0.8, 0.45],
                vec![0.6, 0.65],
                vec![0.45, 0.8],
                vec![0.05, 1.0],
            ],
            2,
        )
    }

    #[test]
    fn pairs_cut_the_region() {
        let data = anti_chain();
        let region = Region::full(2);
        let center = vec![0.5, 0.5];
        let mut rng = StdRng::seed_from_u64(1);
        let qs = candidate_pairs(
            &data,
            &region,
            &center,
            3,
            &[],
            &[],
            PairGenConfig::default(),
            &mut rng,
            None,
        );
        assert!(!qs.is_empty());
        for q in &qs {
            let h = Halfspace::preferring(data.point(q.i), data.point(q.j)).unwrap();
            assert!(region.is_cut_by(&h), "pair {q:?} fails Lemma 8");
        }
    }

    #[test]
    fn respects_m_h_and_asked() {
        let data = anti_chain();
        let region = Region::full(2);
        let center = vec![0.5, 0.5];
        let mut rng = StdRng::seed_from_u64(2);
        let qs = candidate_pairs(
            &data,
            &region,
            &center,
            2,
            &[],
            &[],
            PairGenConfig::default(),
            &mut rng,
            None,
        );
        assert!(qs.len() <= 2);
        let asked: Vec<(usize, usize)> = qs.iter().map(|q| (q.i.min(q.j), q.i.max(q.j))).collect();
        let qs2 = candidate_pairs(
            &data,
            &region,
            &center,
            5,
            &asked,
            &[],
            PairGenConfig::default(),
            &mut rng,
            None,
        );
        for q in &qs2 {
            assert!(
                !asked.contains(&(q.i.min(q.j), q.i.max(q.j))),
                "re-asked {q:?}"
            );
        }
    }

    #[test]
    fn prefers_hyperplanes_near_the_center() {
        // The selected pairs' hyperplane distances should be no larger than
        // the median over all pairs (they were chosen smallest-first).
        let data = anti_chain();
        let region = Region::full(2);
        let center = vec![0.5, 0.5];
        let mut rng = StdRng::seed_from_u64(3);
        let qs = candidate_pairs(
            &data,
            &region,
            &center,
            2,
            &[],
            &[],
            PairGenConfig::default(),
            &mut rng,
            None,
        );
        let mut all: Vec<f64> = Vec::new();
        for a in 0..data.len() {
            for b in a + 1..data.len() {
                if let Some(d) = hyperplane_distance(&data, Question { i: a, j: b }, &center) {
                    all.push(d);
                }
            }
        }
        all.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let median = all[all.len() / 2];
        for q in &qs {
            let d = hyperplane_distance(&data, *q, &center).unwrap();
            assert!(
                d <= median + 1e-9,
                "selected pair too far: {d} > median {median}"
            );
        }
    }

    #[test]
    fn narrowed_region_eventually_yields_no_pairs() {
        // Once the region is a sliver, none of the dataset hyperplanes cut
        // it and candidate generation must come back empty (AA's dead-end
        // stop).
        let data = anti_chain();
        let mut region = Region::full(2);
        region.add(Halfspace::new(vec![0.52, -0.48])); // u0 ⪆ 0.48
        region.add(Halfspace::new(vec![-0.50, 0.50])); // u0 ≤ 0.5
        let center = region.feasible_point().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let qs = candidate_pairs(
            &data,
            &region,
            &center,
            5,
            &[],
            &[],
            PairGenConfig::default(),
            &mut rng,
            None,
        );
        for q in &qs {
            let h = Halfspace::preferring(data.point(q.i), data.point(q.j)).unwrap();
            assert!(region.is_cut_by(&h));
        }
    }

    #[test]
    fn tiny_dataset_is_handled() {
        let data = Dataset::from_points(vec![vec![0.9, 0.1]], 2);
        let region = Region::full(2);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(candidate_pairs(
            &data,
            &region,
            &[0.5, 0.5],
            3,
            &[],
            &[],
            PairGenConfig::default(),
            &mut rng,
            None
        )
        .is_empty());
    }
}
