//! Algorithm AA — the approximate, scalable RL interactive agent
//! (§IV-C, Algorithms 3–4).
//!
//! AA never computes the utility range exactly: it records the half-space
//! set `H`, summarizes the region by its LP-computable inner sphere and
//! outer rectangle, asks questions whose hyperplanes pass near the sphere
//! center, and stops when the rectangle's diagonal certifies a `d²ε` regret
//! bound (Lemma 9) — empirically the returned point stays below ε itself
//! (§V). The avoided polytope maintenance is what lets AA run at `d = 25`
//! where the exact algorithms give out around `d = 5–10`.

mod actions;
mod session;
mod state;

pub use actions::{candidate_pairs, encode_question, hyperplane_distance, PairGenConfig};
pub use session::AaSession;
pub use state::AaSummary;

use crate::interaction::{
    InteractionOutcome, InteractiveAlgorithm, Question, RoundTrace, Stopwatch, TraceMode,
};
use crate::telemetry::{emit_episode_event, emit_round_event, EpisodeProfile};
use crate::user::User;
use crate::watchdog::TrainingWatchdog;
use isrl_data::Dataset;
use isrl_geometry::{Halfspace, RegionGeometry};
use isrl_linalg::vector;
use isrl_rl::{Dqn, DqnConfig, EpsilonSchedule, NextState, Transition};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of [`AaAgent`]. `paper_default` reproduces §V.
#[derive(Debug, Clone)]
pub struct AaConfig {
    /// Action-space size (`m_h`; the paper: 5).
    pub m_h: usize,
    /// Candidate-pair generation knobs (DESIGN.md §2 substitution).
    pub pair_gen: PairGenConfig,
    /// Terminal reward constant `c` (the paper: 100).
    pub reward_c: f64,
    /// Safety cap on rounds per interaction (Lemma 10 bounds rounds by
    /// `O(n²)`; the cap guards numerical stalls).
    pub max_rounds: usize,
    /// Discount factor γ (the paper: 0.8).
    pub gamma: f64,
    /// Learning rate (the paper: 0.003).
    pub lr: f64,
    /// Replay capacity (the paper: 5,000).
    pub replay_capacity: usize,
    /// Minibatch size (the paper: 64).
    pub batch_size: usize,
    /// Target-network sync period in updates (the paper: 20).
    pub target_sync_every: u64,
    /// Gradient steps per interactive round during training (1 = the
    /// paper's cadence; more steps squeeze small training budgets harder).
    pub train_steps_per_round: usize,
    /// Use Adam instead of plain gradient descent in the DQN.
    pub use_adam: bool,
    /// Exploration schedule (the paper: constant 0.9).
    pub epsilon: EpsilonSchedule,
    /// RNG seed.
    pub seed: u64,
    /// Warm-start the per-round geometry LPs from the previous round's
    /// simplex bases (on by default). Purely a speed knob: the warm solver
    /// repairs or discards stale bases, so outcomes are identical either
    /// way — the differential shadow tests flip this to prove it.
    pub warm_lp: bool,
}

impl AaConfig {
    /// The paper's §V hyper-parameters.
    pub fn paper_default() -> Self {
        Self {
            m_h: 5,
            pair_gen: PairGenConfig::default(),
            reward_c: 100.0,
            max_rounds: 200,
            gamma: 0.8,
            lr: 0.003,
            replay_capacity: 5_000,
            batch_size: 64,
            target_sync_every: 20,
            train_steps_per_round: 1,
            use_adam: false,
            epsilon: EpsilonSchedule::paper_default(),
            seed: 0,
            warm_lp: true,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Summary of an AA training run (same shape as EA's).
pub type TrainReport = crate::ea::TrainReport;

struct Observation {
    terminal: bool,
    state: Vec<f64>,
    questions: Vec<Question>,
    action_feats: Vec<Vec<f64>>,
    /// Top-1 point w.r.t. the rectangle midpoint — both the terminal return
    /// value (Algorithm 4, line 11) and the fallback recommendation.
    best: usize,
}

/// The scan-free opening of an AA round, split out of [`AaAgent::observe`]
/// for the serving path (`crate::serving`): the LP summary's state
/// encoding, stop verdict, and sphere center, plus the single utility
/// vector (the rectangle midpoint) whose dataset top-1 is needed. No
/// dataset access and no RNG draw happens here, so a cross-user batcher
/// can coalesce many sessions' scans into one `top1_batch` call. Returns
/// `None` when the region has collapsed.
pub(crate) struct AaPhase1 {
    /// Encoded DQN state (sphere + rectangle summary).
    pub(crate) state: Vec<f64>,
    /// Lemma 9 stop verdict — known before any scan runs.
    pub(crate) terminal: bool,
    /// Inner-sphere center (hit-and-run start and question anchor).
    pub(crate) center: Vec<f64>,
}

/// Phase A of an AA round; see [`AaPhase1`].
pub(crate) fn aa_phase1(geom: &mut RegionGeometry, eps: f64) -> Option<(AaPhase1, Vec<Vec<f64>>)> {
    let summary = AaSummary::from_geometry(geom)?;
    let mid = summary.midpoint();
    Some((
        AaPhase1 {
            state: summary.encode(),
            terminal: summary.meets_stop_condition(eps),
            center: summary.sphere.center().to_vec(),
        },
        vec![mid],
    ))
}

/// Phase B of a non-terminal AA round: the hit-and-run pre-filter pool and
/// the candidate question pairs, consuming the session RNG in the inline
/// path's exact order.
pub(crate) fn aa_actions(
    cfg: &AaConfig,
    dim: usize,
    data: &Dataset,
    geom: &mut RegionGeometry,
    center: &[f64],
    asked: &[(usize, usize)],
    rng: &mut StdRng,
) -> (Vec<Question>, Vec<Vec<f64>>) {
    let pool = {
        let _s = isrl_obs::span("sampling");
        isrl_geometry::sampling::hit_and_run(dim, geom.region().halfspaces(), center, 48, 2, rng)
    };
    let (region, lp_cache) = geom.region_and_lp_cache();
    let questions = candidate_pairs(
        data,
        region,
        center,
        cfg.m_h,
        asked,
        &pool,
        cfg.pair_gen,
        rng,
        lp_cache,
    );
    let action_feats = questions
        .iter()
        .map(|&q| encode_question(data, q))
        .collect();
    (questions, action_feats)
}

/// The approximate RL interactive agent.
#[derive(Debug)]
pub struct AaAgent {
    cfg: AaConfig,
    dim: usize,
    dqn: Dqn,
    rng: StdRng,
    episodes_trained: u64,
    /// Mean TD loss over the most recent learning episode (`None` until the
    /// replay buffer can fill a minibatch). Feeds the `episode` telemetry
    /// event stream.
    last_episode_loss: Option<f64>,
}

impl AaAgent {
    /// Creates an untrained agent for datasets of dimensionality `dim`.
    pub fn new(dim: usize, cfg: AaConfig) -> Self {
        let mut dqn_cfg = DqnConfig::paper_default(AaSummary::state_dim(dim), 2 * dim)
            .with_seed(cfg.seed.wrapping_add(1));
        dqn_cfg.lr = cfg.lr;
        dqn_cfg.gamma = cfg.gamma;
        dqn_cfg.replay_capacity = cfg.replay_capacity;
        dqn_cfg.batch_size = cfg.batch_size;
        dqn_cfg.target_sync_every = cfg.target_sync_every;
        dqn_cfg.use_adam = cfg.use_adam;
        let dqn = Dqn::new(dqn_cfg);
        let rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(2));
        Self {
            cfg,
            dim,
            dqn,
            rng,
            episodes_trained: 0,
            last_episode_loss: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AaConfig {
        &self.cfg
    }

    /// Episodes trained so far.
    pub fn episodes_trained(&self) -> u64 {
        self.episodes_trained
    }

    /// Access to the underlying DQN (checkpointing).
    pub fn dqn(&self) -> &Dqn {
        &self.dqn
    }

    /// Dimensionality the agent was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Restores trained Q-network parameters and the episode counter
    /// (checkpoint loading; see `crate::checkpoint`).
    pub fn restore(&mut self, params: &[f64], episodes_trained: u64) {
        self.dqn.load_params(params);
        self.episodes_trained = episodes_trained;
    }

    fn observe(
        &mut self,
        data: &Dataset,
        geom: &mut RegionGeometry,
        eps: f64,
        asked: &[(usize, usize)],
    ) -> Option<Observation> {
        // The geometry's summary cache means the sphere/rectangle LPs run
        // at most once per cut even though the state encoding, stop test,
        // and trace events all consume them.
        let summary = AaSummary::from_geometry(geom)?;
        let region = geom.region();
        let mid = summary.midpoint();
        let best = {
            let _t = isrl_obs::span("top1");
            data.argmax_utility(&mid)
        };
        let state = summary.encode();
        if summary.meets_stop_condition(eps) {
            return Some(Observation {
                terminal: true,
                state,
                questions: Vec::new(),
                action_feats: Vec::new(),
                best,
            });
        }
        // Cheap pool of region samples for hyperplane pre-filtering: a
        // short hit-and-run walk from the inner-sphere center. Keeps the
        // per-round LP count near 2·m_h even at d = 25 (DESIGN.md §2).
        let pool = {
            let _s = isrl_obs::span("sampling");
            isrl_geometry::sampling::hit_and_run(
                self.dim,
                region.halfspaces(),
                summary.sphere.center(),
                48,
                2,
                &mut self.rng,
            )
        };
        let (region, lp_cache) = geom.region_and_lp_cache();
        let questions = candidate_pairs(
            data,
            region,
            summary.sphere.center(),
            self.cfg.m_h,
            asked,
            &pool,
            self.cfg.pair_gen,
            &mut self.rng,
            lp_cache,
        );
        let action_feats = questions
            .iter()
            .map(|&q| encode_question(data, q))
            .collect();
        Some(Observation {
            terminal: false,
            state,
            questions,
            action_feats,
            best,
        })
    }

    fn episode(
        &mut self,
        data: &Dataset,
        answer: &mut dyn FnMut(&[f64], &[f64]) -> bool,
        eps: f64,
        explore_eps: f64,
        learn: bool,
        trace_mode: TraceMode,
    ) -> InteractionOutcome {
        assert_eq!(data.dim(), self.dim, "dataset dimension mismatch");
        assert!(!data.is_empty(), "cannot interact over an empty dataset");
        let sw = Stopwatch::start();
        let mut profile = EpisodeProfile::begin("AA");
        // AA never materializes vertices; `summary_only` keeps cuts O(1).
        let mut geom = RegionGeometry::summary_only(self.dim);
        geom.set_warm_lp(self.cfg.warm_lp);
        let mut asked: Vec<(usize, usize)> = Vec::new();
        let mut trace: Vec<RoundTrace> = Vec::new();
        let mut rounds = 0usize;
        let mut loss_sum = 0.0;
        let mut loss_n = 0u64;
        self.last_episode_loss = None;

        let mut obs = self
            .observe(data, &mut geom, eps, &asked)
            .expect("the full utility simplex is never empty");

        loop {
            if obs.terminal {
                return InteractionOutcome {
                    point_index: obs.best,
                    rounds,
                    elapsed: sw.elapsed(),
                    trace,
                    truncated: false,
                };
            }
            if obs.questions.is_empty() || rounds >= self.cfg.max_rounds {
                // Dead end: no dataset hyperplane can narrow R further, or
                // the safety cap fired. Return the midpoint's top-1.
                return InteractionOutcome {
                    point_index: obs.best,
                    rounds,
                    elapsed: sw.elapsed(),
                    trace,
                    truncated: true,
                };
            }

            // Phase timings are collected per round (into the trace and the
            // `round` event stream) whenever either consumer is active.
            let record = trace_mode.should_trace(rounds + 1) || isrl_obs::enabled();
            if record {
                isrl_obs::round_begin();
            }
            let round_started = sw.elapsed();

            let idx = {
                let _nn = isrl_obs::span("nn");
                if learn {
                    self.dqn
                        .select_action(&obs.state, &obs.action_feats, explore_eps)
                } else {
                    self.dqn.best_action(&obs.state, &obs.action_feats).0
                }
            };
            let q = obs.questions[idx];
            let prefers_i = answer(data.point(q.i), data.point(q.j));
            let (win, lose) = if prefers_i { (q.i, q.j) } else { (q.j, q.i) };
            asked.push((q.i.min(q.j), q.i.max(q.j)));
            rounds += 1;
            profile.set_rounds(rounds);
            if let Some(h) = Halfspace::preferring(data.point(win), data.point(lose)) {
                geom.add(h);
            }

            let next_obs = match self.observe(data, &mut geom, eps, &asked) {
                None => {
                    if record {
                        isrl_obs::round_end();
                    }
                    return InteractionOutcome {
                        point_index: obs.best,
                        rounds,
                        elapsed: sw.elapsed(),
                        trace,
                        truncated: true,
                    };
                }
                Some(next_obs) => next_obs,
            };

            if learn {
                let dead_end = !next_obs.terminal && next_obs.questions.is_empty();
                let transition = Transition {
                    state: std::mem::take(&mut obs.state),
                    action: obs.action_feats[idx].clone(),
                    reward: if next_obs.terminal {
                        self.cfg.reward_c
                    } else {
                        0.0
                    },
                    next: if next_obs.terminal || dead_end {
                        None
                    } else {
                        Some(NextState {
                            state: next_obs.state.clone(),
                            actions: next_obs.action_feats.clone(),
                        })
                    },
                };
                self.dqn.push_transition(transition);
                for _ in 0..self.cfg.train_steps_per_round.max(1) {
                    if let Some(loss) = self.dqn.train_step() {
                        loss_sum += loss;
                        loss_n += 1;
                    }
                }
                if loss_n > 0 {
                    self.last_episode_loss = Some(loss_sum / loss_n as f64);
                }
            }

            if record {
                let phases = isrl_obs::round_end();
                let volume = geom.volume_proxy();
                if isrl_obs::enabled() {
                    emit_round_event(
                        "AA",
                        rounds,
                        Some(q),
                        sw.elapsed(),
                        (sw.elapsed() - round_started).as_secs_f64() * 1e3,
                        None,
                        None,
                        volume,
                        &phases,
                    );
                }
                if trace_mode.should_trace(rounds) {
                    let mut t =
                        RoundTrace::new(rounds, sw.elapsed(), next_obs.best, geom.region().clone());
                    t.phases = phases;
                    t.volume_proxy = volume;
                    trace.push(t);
                }
            }
            obs = next_obs;
        }
    }

    /// Trains the agent on simulated users (Algorithm 3).
    pub fn train(&mut self, data: &Dataset, utilities: &[Vec<f64>], eps: f64) -> TrainReport {
        let mut rounds = Vec::with_capacity(utilities.len());
        let mut watchdog = TrainingWatchdog::new("AA", self.cfg.batch_size);
        for u in utilities {
            let explore = self.cfg.epsilon.value(self.episodes_trained);
            let u = u.clone();
            let mut answer =
                move |p_i: &[f64], p_j: &[f64]| vector::dot(&u, p_i) >= vector::dot(&u, p_j);
            let outcome = self.episode(data, &mut answer, eps, explore, true, TraceMode::Off);
            emit_episode_event(
                "AA",
                self.episodes_trained,
                outcome.rounds,
                explore,
                if outcome.truncated {
                    0.0
                } else {
                    self.cfg.reward_c
                },
                self.dqn.replay_len(),
                outcome.truncated,
                self.last_episode_loss,
            );
            watchdog.observe(
                self.episodes_trained,
                explore,
                self.dqn.replay_len(),
                self.last_episode_loss,
            );
            rounds.push(outcome.rounds);
            self.episodes_trained += 1;
        }
        self.dqn.sync_target();
        let mut report = TrainReport::from_rounds(rounds);
        report.anomalies = watchdog.anomalies().to_vec();
        report
    }
}

impl InteractiveAlgorithm for AaAgent {
    fn name(&self) -> &'static str {
        "AA"
    }

    fn run(
        &mut self,
        data: &Dataset,
        user: &mut dyn User,
        eps: f64,
        trace: TraceMode,
    ) -> InteractionOutcome {
        let mut answer = |p_i: &[f64], p_j: &[f64]| user.prefers(p_i, p_j);
        self.episode(data, &mut answer, eps, 0.0, false, trace)
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regret::regret_ratio_of_index;
    use crate::user::SimulatedUser;

    fn small_data() -> Dataset {
        Dataset::from_points(
            vec![
                vec![1.0, 0.05],
                vec![0.85, 0.4],
                vec![0.6, 0.65],
                vec![0.4, 0.85],
                vec![0.05, 1.0],
            ],
            2,
        )
    }

    #[test]
    fn untrained_agent_terminates_and_meets_the_empirical_bound() {
        let data = small_data();
        let mut agent = AaAgent::new(2, AaConfig::paper_default().with_seed(1));
        let eps = 0.1;
        let mut user = SimulatedUser::new(vec![0.35, 0.65]);
        let out = agent.run(&data, &mut user, eps, TraceMode::Off);
        assert!(out.rounds <= agent.config().max_rounds);
        let regret = regret_ratio_of_index(&data, out.point_index, user.ground_truth());
        // Lemma 9's hard guarantee is d²ε; §V observes ≤ ε in practice —
        // check the hard bound strictly and the empirical one loosely.
        assert!(regret <= 4.0 * eps + 1e-9, "hard bound violated: {regret}");
        assert!(
            regret <= eps + 0.05,
            "empirically regret stays near ε: {regret}"
        );
    }

    #[test]
    fn regret_bound_holds_across_users() {
        let data = small_data();
        let mut agent = AaAgent::new(2, AaConfig::paper_default().with_seed(2));
        let eps = 0.1;
        for w in [0.15, 0.4, 0.6, 0.85] {
            let mut user = SimulatedUser::new(vec![w, 1.0 - w]);
            let out = agent.run(&data, &mut user, eps, TraceMode::Off);
            let regret = regret_ratio_of_index(&data, out.point_index, user.ground_truth());
            assert!(
                regret <= (2.0f64).powi(2) * eps + 1e-9,
                "user {w}: regret {regret} exceeds d²ε"
            );
        }
    }

    #[test]
    fn works_in_higher_dimensions() {
        // AA's selling point: d where EA's vertex enumeration gets pricey.
        let d = 6;
        let data = isrl_data::generate(200, d, isrl_data::Distribution::AntiCorrelated, 3);
        let data = isrl_data::skyline(&data);
        let mut agent = AaAgent::new(d, AaConfig::paper_default().with_seed(3));
        let mut u = vec![1.0 / d as f64; d];
        u[0] += 0.1;
        u[1] -= 0.1;
        let mut user = SimulatedUser::new(u);
        let out = agent.run(&data, &mut user, 0.2, TraceMode::Off);
        let regret = regret_ratio_of_index(&data, out.point_index, user.ground_truth());
        assert!(regret < 0.2 * (d * d) as f64, "regret {regret}");
        assert!(out.rounds > 0);
    }

    #[test]
    fn training_runs_and_reports() {
        let data = small_data();
        let mut agent = AaAgent::new(2, AaConfig::paper_default().with_seed(4));
        let utilities: Vec<Vec<f64>> = (1..=8)
            .map(|i| vec![i as f64 / 9.0, 1.0 - i as f64 / 9.0])
            .collect();
        let report = agent.train(&data, &utilities, 0.1);
        assert_eq!(report.episodes, 8);
        assert!(
            agent.dqn().replay_len() > 0,
            "training must fill the replay"
        );
    }

    #[test]
    fn trace_rounds_are_sequential() {
        let data = small_data();
        let mut agent = AaAgent::new(2, AaConfig::paper_default().with_seed(5));
        let mut user = SimulatedUser::new(vec![0.55, 0.45]);
        let out = agent.run(&data, &mut user, 0.05, TraceMode::PerRound);
        assert_eq!(out.trace.len(), out.rounds);
        for (k, t) in out.trace.iter().enumerate() {
            assert_eq!(t.round, k + 1);
        }
    }
}
