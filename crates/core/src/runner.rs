//! Experiment runner: evaluates any [`InteractiveAlgorithm`] over a
//! population of simulated users and aggregates the paper's three
//! measurements (rounds, time, regret).

use crate::interaction::{InteractionOutcome, InteractiveAlgorithm, TraceMode};
use crate::metrics::RunStats;
use crate::regret::regret_ratio_of_index;
use crate::user::SimulatedUser;
use isrl_data::Dataset;
use isrl_geometry::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws `count` user utility vectors uniformly from the simplex — the
/// paper's protocol for both training sets and test users.
pub fn sample_users(d: usize, count: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| sampling::sample_simplex(d, &mut rng))
        .collect()
}

/// Result of [`evaluate`]: per-user outcomes plus the aggregate statistics.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Aggregated statistics across all users.
    pub stats: RunStats,
    /// Per-user interaction outcomes, in user order.
    pub outcomes: Vec<InteractionOutcome>,
    /// Per-user final regret ratios, in user order.
    pub regrets: Vec<f64>,
}

/// Runs `algo` once per test utility vector and aggregates rounds, time,
/// and the final regret ratio (computed against each user's ground truth).
pub fn evaluate(
    algo: &mut dyn InteractiveAlgorithm,
    data: &Dataset,
    users: &[Vec<f64>],
    eps: f64,
    trace: TraceMode,
) -> Evaluation {
    let mut outcomes = Vec::with_capacity(users.len());
    let mut regrets = Vec::with_capacity(users.len());
    let mut obs = Vec::with_capacity(users.len());
    for u in users {
        let mut user = SimulatedUser::new(u.clone());
        let out = algo.run(data, &mut user, eps, trace);
        let regret = regret_ratio_of_index(data, out.point_index, u);
        obs.push((out.rounds, out.elapsed.as_secs_f64(), regret, out.truncated));
        regrets.push(regret);
        outcomes.push(out);
    }
    Evaluation {
        stats: RunStats::from_observations(&obs),
        outcomes,
        regrets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::UtilityApprox;

    #[test]
    fn users_land_on_the_simplex() {
        let users = sample_users(5, 20, 1);
        assert_eq!(users.len(), 20);
        for u in &users {
            assert!((u.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(u.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn user_sampling_is_seed_deterministic() {
        assert_eq!(sample_users(3, 5, 7), sample_users(3, 5, 7));
        assert_ne!(sample_users(3, 5, 7), sample_users(3, 5, 8));
    }

    #[test]
    fn evaluate_aggregates_per_user_runs() {
        let data = Dataset::from_points(vec![vec![0.9, 0.2], vec![0.6, 0.6], vec![0.2, 0.9]], 2);
        let users = sample_users(2, 4, 3);
        let mut algo = UtilityApprox::default();
        let eval = evaluate(&mut algo, &data, &users, 0.15, TraceMode::Off);
        assert_eq!(eval.outcomes.len(), 4);
        assert_eq!(eval.regrets.len(), 4);
        assert_eq!(eval.stats.runs, 4);
        assert!(eval.stats.mean_rounds > 0.0);
        assert!(
            eval.stats.max_regret <= 0.15 + 1e-9,
            "UtilityApprox is exact here"
        );
    }
}
