//! User oracles.
//!
//! During evaluation (and RL training) the "user" is simulated by a hidden
//! utility vector: presented with a question `⟨p_i, p_j⟩`, the oracle
//! prefers the point with the higher utility (§III). [`NoisyUser`]
//! implements the paper's stated future-work direction — users who make
//! mistakes — by flipping each answer independently with a fixed
//! probability; the benches use it to probe the robustness of all
//! algorithms' stopping conditions.

use isrl_linalg::vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Something that can answer pairwise preference questions.
pub trait User {
    /// `true` iff the user prefers `p_i` to `p_j` (ties answered as "yes",
    /// matching line 10 of Algorithm 1).
    fn prefers(&mut self, p_i: &[f64], p_j: &[f64]) -> bool;

    /// Number of questions answered so far.
    fn questions_asked(&self) -> usize;
}

/// A deterministic simulated user with a hidden linear utility function.
#[derive(Debug, Clone)]
pub struct SimulatedUser {
    utility: Vec<f64>,
    asked: usize,
}

impl SimulatedUser {
    /// Creates a user with the given (hidden) utility vector.
    ///
    /// # Panics
    /// Panics if the vector is not on the simplex (components must be
    /// non-negative and sum to 1 within 1e-6), matching §III's assumption.
    pub fn new(utility: Vec<f64>) -> Self {
        assert!(
            utility.iter().all(|&x| x >= 0.0),
            "utility vector must be non-negative"
        );
        assert!(
            (vector::sum(&utility) - 1.0).abs() < 1e-6,
            "utility vector must sum to 1"
        );
        Self { utility, asked: 0 }
    }

    /// The hidden utility vector (test/metric access; an interactive
    /// algorithm must never call this).
    pub fn ground_truth(&self) -> &[f64] {
        &self.utility
    }
}

impl User for SimulatedUser {
    fn prefers(&mut self, p_i: &[f64], p_j: &[f64]) -> bool {
        self.asked += 1;
        vector::dot(&self.utility, p_i) >= vector::dot(&self.utility, p_j)
    }

    fn questions_asked(&self) -> usize {
        self.asked
    }
}

/// A simulated user whose answers flip independently with probability
/// `flip_prob` (the paper's future-work scenario).
#[derive(Debug, Clone)]
pub struct NoisyUser {
    inner: SimulatedUser,
    flip_prob: f64,
    rng: StdRng,
}

impl NoisyUser {
    /// Creates a noisy user.
    ///
    /// # Panics
    /// Panics if `flip_prob` is outside `[0, 1)` or the utility vector is
    /// invalid (see [`SimulatedUser::new`]).
    pub fn new(utility: Vec<f64>, flip_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&flip_prob),
            "flip probability must be in [0, 1)"
        );
        Self {
            inner: SimulatedUser::new(utility),
            flip_prob,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The hidden utility vector (metric access only).
    pub fn ground_truth(&self) -> &[f64] {
        self.inner.ground_truth()
    }
}

impl User for NoisyUser {
    fn prefers(&mut self, p_i: &[f64], p_j: &[f64]) -> bool {
        let truthful = self.inner.prefers(p_i, p_j);
        if self.rng.gen_range(0.0..1.0) < self.flip_prob {
            !truthful
        } else {
            truthful
        }
    }

    fn questions_asked(&self) -> usize {
        self.inner.questions_asked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_user_answers_by_utility() {
        // Table III of the paper: u = (0.3, 0.7); p3 beats p2.
        let mut u = SimulatedUser::new(vec![0.3, 0.7]);
        assert!(u.prefers(&[0.5, 0.8], &[0.3, 0.7]));
        assert!(!u.prefers(&[1.0, 0.0], &[0.0, 1.0]));
        assert_eq!(u.questions_asked(), 2);
    }

    #[test]
    fn ties_answer_yes() {
        let mut u = SimulatedUser::new(vec![0.5, 0.5]);
        assert!(u.prefers(&[0.6, 0.4], &[0.4, 0.6]));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_off_simplex_vector() {
        SimulatedUser::new(vec![0.5, 0.2]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        SimulatedUser::new(vec![1.5, -0.5]);
    }

    #[test]
    fn zero_noise_matches_truthful() {
        let mut noisy = NoisyUser::new(vec![0.3, 0.7], 0.0, 1);
        let mut clean = SimulatedUser::new(vec![0.3, 0.7]);
        for (a, b) in [([0.9, 0.1], [0.1, 0.9]), ([0.2, 0.8], [0.8, 0.2])] {
            assert_eq!(noisy.prefers(&a, &b), clean.prefers(&a, &b));
        }
    }

    #[test]
    fn noise_flips_at_roughly_the_configured_rate() {
        let mut noisy = NoisyUser::new(vec![0.3, 0.7], 0.25, 7);
        let mut clean = SimulatedUser::new(vec![0.3, 0.7]);
        let p_i = [0.9, 0.1];
        let p_j = [0.1, 0.9];
        let flips = (0..4000)
            .filter(|_| noisy.prefers(&p_i, &p_j) != clean.prefers(&p_i, &p_j))
            .count();
        let rate = flips as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "flip rate {rate}");
    }
}
