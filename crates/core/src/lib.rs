#![warn(missing_docs)]
//! # Interactive Search with Reinforcement Learning
//!
//! A complete Rust implementation of *"Interactive Search with Reinforcement
//! Learning"* (ICDE 2025): the interactive regret query optimized for the
//! **whole** interaction process rather than round-by-round.
//!
//! The query: given a database of tuples normalized to `(0, 1]^d` and a
//! regret threshold ε, interact with a user through pairwise "which do you
//! prefer?" questions until a tuple whose regret ratio is below ε can be
//! returned — in as few questions as possible.
//!
//! ## The two contributions
//!
//! * [`ea::EaAgent`] — the **exact** algorithm: maintains the utility range
//!   as an explicit polytope, restricts actions to terminal-polyhedron
//!   anchor pairs, and returns a certified below-ε tuple (Lemmas 4–7,
//!   Theorem 1).
//! * [`aa::AaAgent`] — the **approximate** algorithm: half-space bookkeeping
//!   plus LP-computed inner-sphere/outer-rectangle summaries; scales to
//!   d = 25 with a `d²ε` worst-case (≤ ε empirical) regret bound (Lemmas
//!   8–10).
//!
//! Both train a DQN (experience replay, target network — `isrl-rl`) so that
//! question selection maximizes the discounted terminal reward, i.e.
//! minimizes the expected number of rounds.
//!
//! ## Everything around them
//!
//! * [`baselines`] — UH-Random, UH-Simplex (SIGMOD'19), SinglePass
//!   (KDD'23), UtilityApprox (SIGMOD'12), rebuilt from their papers;
//! * [`user`] — simulated (and noisy — the paper's future work) oracles;
//! * [`interaction`] — the round/trace/outcome framework;
//! * [`metrics`] / [`regret`] — the paper's §V measurements, including the
//!   per-round maximum regret ratio of Figures 7–8;
//! * [`runner`] — multi-user evaluation sweeps;
//! * [`serving`] — the multi-session serving core: shared-checkpoint
//!   sessions, cross-user scan batching, the line-JSON wire protocol, a
//!   blocking TCP server, and a protocol-level load generator.
//!
//! ## Quickstart
//!
//! ```
//! use isrl_core::prelude::*;
//!
//! // A tiny 2-d dataset (every point optimal for some preference).
//! let data = isrl_data::Dataset::from_points(
//!     vec![vec![1.0, 0.1], vec![0.7, 0.7], vec![0.1, 1.0]],
//!     2,
//! );
//! // Train the exact agent on a handful of simulated users.
//! let mut agent = EaAgent::new(2, EaConfig::paper_default());
//! let train_users = sample_users(2, 5, 42);
//! agent.train(&data, &train_users, 0.1);
//! // Interact with a fresh user.
//! let mut user = SimulatedUser::new(vec![0.6, 0.4]);
//! let outcome = agent.run(&data, &mut user, 0.1, TraceMode::Off);
//! let regret = regret_ratio_of_index(&data, outcome.point_index, user.ground_truth());
//! assert!(regret < 0.1);
//! ```

pub mod aa;
pub mod baselines;
pub mod checkpoint;
pub mod diagnostics;
pub mod ea;
pub mod interaction;
pub mod metrics;
pub mod regret;
pub mod runner;
pub mod serving;
pub(crate) mod telemetry;
pub mod user;
pub mod watchdog;

/// One-stop imports for applications and benches.
pub mod prelude {
    pub use crate::aa::{AaAgent, AaConfig, AaSession};
    pub use crate::baselines::{
        SinglePass, SinglePassConfig, UhBaseline, UhConfig, UhStrategy, UtilityApprox,
        UtilityApproxConfig,
    };
    pub use crate::checkpoint::{load_aa, load_ea, save_aa, save_ea, CheckpointError};
    pub use crate::diagnostics::{analyze, DiagnosticReport, DiagnosticsConfig, VolumeMode};
    pub use crate::ea::{EaAgent, EaConfig, EaSession};
    pub use crate::interaction::{
        InteractionOutcome, InteractiveAlgorithm, Question, RoundTrace, TraceMode,
    };
    pub use crate::metrics::{max_regret_estimate, RunStats};
    pub use crate::regret::{regret_ratio, regret_ratio_of_index};
    pub use crate::runner::{evaluate, sample_users, Evaluation};
    pub use crate::serving::{
        run_loadgen, spawn_server, AlgoKind, LoadgenConfig, LoadgenReport, ServeError, ServePolicy,
        ServeSession, ServerConfig, ServerHandle, ServerStats, SessionRegistry,
    };
    pub use crate::user::{NoisyUser, SimulatedUser, User};
    pub use crate::watchdog::{Anomaly, AnomalyKind, TrainingWatchdog, WatchdogConfig};
}
