//! Evaluation metrics.
//!
//! Implements the paper's three measurements (§V): execution time and round
//! counts come straight from [`crate::interaction::InteractionOutcome`];
//! this module adds the *regret* side — the final regret ratio and the
//! per-round **maximum regret ratio** of Figures 7–8, estimated exactly the
//! way the paper describes: sample utility vectors from the learned region,
//! take the recommendation's worst regret over the samples.

use isrl_data::Dataset;
use isrl_geometry::{sampling, Region};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default number of utility-vector samples for [`max_regret_estimate`]
/// (the paper uses 10,000; sweeps lower it for speed).
pub const DEFAULT_MAX_REGRET_SAMPLES: usize = 10_000;

/// Estimates the maximum regret ratio of `point_index` over every utility
/// vector still consistent with the interaction (`region`), following the
/// paper's procedure for Figures 7–8: draw `n_samples` vectors from the
/// region and report the worst observed regret.
///
/// Sampling strategy: rejection from the simplex while it still succeeds
/// (exact uniform), then hit-and-run seeded at the region's inner-sphere
/// center once the region is too small for rejection. Returns `None` when
/// the region has no interior at all (empty or degenerate).
pub fn max_regret_estimate(
    data: &Dataset,
    region: &Region,
    point_index: usize,
    n_samples: usize,
    seed: u64,
) -> Option<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = region.dim();
    // Cheap exact attempt first: rejection with a modest budget.
    let mut samples = sampling::sample_region_rejection(
        d,
        region.halfspaces(),
        n_samples,
        n_samples.saturating_mul(20),
        &mut rng,
    );
    if samples.len() < n_samples {
        let center = region.feasible_point()?;
        let remaining = n_samples - samples.len();
        samples.extend(sampling::hit_and_run(
            d,
            region.halfspaces(),
            &center,
            remaining,
            2,
            &mut rng,
        ));
    }
    if samples.is_empty() {
        return None;
    }
    // One cache-blocked pass for every sample's best utility value (the
    // numerator's `max_p f_u(p)`), instead of a full dataset scan per
    // sample. Same dot products and tie-breaking as `regret_ratio_of_index`.
    let q = data.point(point_index);
    let tops = data.top1_batch(&samples);
    let worst = samples
        .iter()
        .zip(&tops)
        .map(|(u, t)| {
            let best = t.value;
            assert!(
                best > 0.0,
                "maximum utility must be positive on normalized data"
            );
            ((best - isrl_linalg::vector::dot(q, u)) / best).max(0.0)
        })
        .fold(0.0, f64::max);
    Some(worst)
}

/// Aggregate over repeated runs: mean rounds, mean time (seconds), mean and
/// max final regret.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Mean number of interactive rounds.
    pub mean_rounds: f64,
    /// Mean wall-clock seconds per interaction.
    pub mean_seconds: f64,
    /// Mean final regret ratio.
    pub mean_regret: f64,
    /// Worst final regret ratio.
    pub max_regret: f64,
    /// Number of runs aggregated.
    pub runs: usize,
    /// How many runs hit their safety round cap.
    pub truncated_runs: usize,
}

impl RunStats {
    /// Aggregates `(rounds, seconds, regret, truncated)` observations.
    pub fn from_observations(obs: &[(usize, f64, f64, bool)]) -> Self {
        if obs.is_empty() {
            return Self::default();
        }
        let n = obs.len() as f64;
        Self {
            mean_rounds: obs.iter().map(|o| o.0 as f64).sum::<f64>() / n,
            mean_seconds: obs.iter().map(|o| o.1).sum::<f64>() / n,
            mean_regret: obs.iter().map(|o| o.2).sum::<f64>() / n,
            max_regret: obs.iter().map(|o| o.2).fold(0.0, f64::max),
            runs: obs.len(),
            truncated_runs: obs.iter().filter(|o| o.3).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrl_geometry::Halfspace;

    fn diagonal_data() -> Dataset {
        Dataset::from_points(vec![vec![0.9, 0.1], vec![0.6, 0.6], vec![0.1, 0.9]], 2)
    }

    #[test]
    fn full_region_max_regret_is_large_for_a_corner_point() {
        // Recommending the extreme point (0.9, 0.1) must show high regret
        // for utility vectors favoring attribute 2.
        let data = diagonal_data();
        let r = max_regret_estimate(&data, &Region::full(2), 0, 2_000, 1).unwrap();
        assert!(
            r > 0.3,
            "corner recommendation should look bad somewhere: {r}"
        );
    }

    #[test]
    fn narrowed_region_reduces_max_regret() {
        let data = diagonal_data();
        let mut region = Region::full(2);
        let wide = max_regret_estimate(&data, &region, 1, 2_000, 2).unwrap();
        // Learn that the user is nearly balanced: u0 ≥ u1 and u1 ≥ 0.8·u0.
        region.add(Halfspace::new(vec![1.0, -1.0]));
        region.add(Halfspace::new(vec![-0.8, 1.0]));
        let narrow = max_regret_estimate(&data, &region, 1, 2_000, 2).unwrap();
        assert!(
            narrow < wide,
            "narrowing must not increase max regret: {wide} -> {narrow}"
        );
        // The balanced point is in fact optimal on this narrowed region.
        assert!(
            narrow < 0.05,
            "balanced point should be near-optimal: {narrow}"
        );
    }

    #[test]
    fn empty_region_yields_none() {
        let data = diagonal_data();
        let mut region = Region::full(2);
        region.add(Halfspace::new(vec![0.5, -1.5]));
        region.add(Halfspace::new(vec![-1.5, 0.5]));
        assert!(max_regret_estimate(&data, &region, 0, 100, 3).is_none());
    }

    #[test]
    fn run_stats_aggregate() {
        let stats = RunStats::from_observations(&[(10, 1.0, 0.05, false), (20, 3.0, 0.15, true)]);
        assert_eq!(stats.mean_rounds, 15.0);
        assert_eq!(stats.mean_seconds, 2.0);
        assert!((stats.mean_regret - 0.10).abs() < 1e-12);
        assert_eq!(stats.max_regret, 0.15);
        assert_eq!(stats.truncated_runs, 1);
        assert_eq!(RunStats::from_observations(&[]), RunStats::default());
    }
}
