//! Multi-session serving: thousands of live interactions behind one
//! shared dataset and checkpoint.
//!
//! The paper evaluates the interactive loop one simulated user at a time;
//! the ROADMAP's north star is heavy concurrent traffic. This module is
//! the serving core that bridges the two (DESIGN.md §14):
//!
//! * [`ServePolicy`] — a loaded EA/AA checkpoint evaluated immutably
//!   (`Dqn::best_action_ref`), so any number of sessions share one
//!   `Arc<ServePolicy>` + `Arc<Dataset>`;
//! * [`ServeSession`] — an *owned* per-user interaction state machine
//!   (unlike the borrowing `EaSession`/`AaSession`); each round splits
//!   into a scan-free plan phase and a finish phase consuming externally
//!   computed top-1 results;
//! * [`SessionRegistry`] — holds the live sessions and runs the
//!   **cross-user batcher**: every pump coalesces all pending per-session
//!   scans into a single `top1_batch` call. Exactness of the scan makes
//!   this behavior-preserving, which the session-isolation differential
//!   test pins;
//! * [`protocol`] — the line-delimited JSON frames
//!   (`hello`/`question`/`answer`/`done`/`error`/`shutdown`);
//! * [`server`] — a small hand-rolled blocking TCP reactor (no async
//!   runtime; the workspace builds offline) with a micro-batching window;
//! * [`loadgen`] — replays N simulated users over the protocol and
//!   reports sessions/sec plus p50/p99 round latency.

mod answer;
mod loadgen;
mod policy;
pub mod protocol;
mod registry;
mod server;
mod session;

pub use answer::{choice_from_number, parse_choice};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use policy::{AlgoKind, ServePolicy};
pub use registry::{BatchStats, SessionRegistry};
pub use server::{spawn_server, ServerConfig, ServerHandle, ServerStats};
pub use session::{ServeError, ServeSession};
