//! The shared, immutable policy behind every serving session.

use crate::aa::AaAgent;
use crate::checkpoint::{self, CheckpointError};
use crate::ea::EaAgent;
use isrl_geometry::GeometryBackend;
use isrl_rl::Dqn;

/// Which interactive algorithm a session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// Algorithm EA — exact region maintenance, exact return.
    Ea,
    /// Algorithm AA — LP-summarized region, approximate return.
    Aa,
}

impl AlgoKind {
    /// Parses the protocol spelling (`"ea"`/`"aa"`, case-insensitive).
    pub fn parse(text: &str) -> Option<Self> {
        match text.trim().to_ascii_lowercase().as_str() {
            "ea" => Some(AlgoKind::Ea),
            "aa" => Some(AlgoKind::Aa),
            _ => None,
        }
    }

    /// The protocol spelling (lowercase).
    pub fn as_str(self) -> &'static str {
        match self {
            AlgoKind::Ea => "ea",
            AlgoKind::Aa => "aa",
        }
    }

    /// The telemetry spelling, matching the `round`/`episode` event streams.
    pub fn label(self) -> &'static str {
        match self {
            AlgoKind::Ea => "EA",
            AlgoKind::Aa => "AA",
        }
    }
}

/// A loaded agent served read-only.
///
/// [`ServeSession`](crate::serving::ServeSession) evaluates the Q-network
/// through [`Dqn::best_action_ref`] with a session-owned scratch buffer, so
/// one `Arc<ServePolicy>` backs any number of concurrent sessions without
/// locking or copying the network.
#[derive(Debug)]
pub enum ServePolicy {
    /// An EA checkpoint.
    Ea(EaAgent),
    /// An AA checkpoint.
    Aa(AaAgent),
}

impl ServePolicy {
    /// Deserializes either agent kind from a checkpoint blob (the blob's
    /// agent tag decides which).
    pub fn from_checkpoint(bytes: &[u8]) -> Result<Self, CheckpointError> {
        match checkpoint::load_ea(bytes) {
            Ok(agent) => Ok(ServePolicy::Ea(agent)),
            Err(CheckpointError::WrongAgent { .. }) => {
                checkpoint::load_aa(bytes).map(ServePolicy::Aa)
            }
            Err(e) => Err(e),
        }
    }

    /// The algorithm this policy runs.
    pub fn algo(&self) -> AlgoKind {
        match self {
            ServePolicy::Ea(_) => AlgoKind::Ea,
            ServePolicy::Aa(_) => AlgoKind::Aa,
        }
    }

    /// Dimensionality the policy was trained for.
    pub fn dim(&self) -> usize {
        match self {
            ServePolicy::Ea(a) => a.dim(),
            ServePolicy::Aa(a) => a.dim(),
        }
    }

    /// Overrides the EA region-geometry backend (a serving-time choice, not
    /// persisted in checkpoints). Returns `false` — and changes nothing —
    /// for an AA policy, which has no region geometry to configure.
    pub fn set_geometry(&mut self, backend: GeometryBackend) -> bool {
        match self {
            ServePolicy::Ea(a) => {
                a.set_geometry(backend);
                true
            }
            ServePolicy::Aa(_) => false,
        }
    }

    pub(crate) fn dqn(&self) -> &Dqn {
        match self {
            ServePolicy::Ea(a) => a.dqn(),
            ServePolicy::Aa(a) => a.dqn(),
        }
    }
}

impl From<EaAgent> for ServePolicy {
    fn from(agent: EaAgent) -> Self {
        ServePolicy::Ea(agent)
    }
}

impl From<AaAgent> for ServePolicy {
    fn from(agent: AaAgent) -> Self {
        ServePolicy::Aa(agent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aa::AaConfig;
    use crate::ea::EaConfig;

    #[test]
    fn algo_kind_round_trips() {
        assert_eq!(AlgoKind::parse("ea"), Some(AlgoKind::Ea));
        assert_eq!(AlgoKind::parse(" AA\n"), Some(AlgoKind::Aa));
        assert_eq!(AlgoKind::parse("eaa"), None);
        assert_eq!(AlgoKind::parse(""), None);
        for kind in [AlgoKind::Ea, AlgoKind::Aa] {
            assert_eq!(AlgoKind::parse(kind.as_str()), Some(kind));
        }
    }

    #[test]
    fn from_checkpoint_dispatches_on_tag() {
        let ea = EaAgent::new(2, EaConfig::paper_default());
        let blob = crate::checkpoint::save_ea(&ea);
        assert_eq!(
            ServePolicy::from_checkpoint(&blob).unwrap().algo(),
            AlgoKind::Ea
        );

        let aa = AaAgent::new(3, AaConfig::paper_default());
        let blob = crate::checkpoint::save_aa(&aa);
        let policy = ServePolicy::from_checkpoint(&blob).unwrap();
        assert_eq!(policy.algo(), AlgoKind::Aa);
        assert_eq!(policy.dim(), 3);

        assert!(ServePolicy::from_checkpoint(b"not a checkpoint").is_err());
    }
}
