//! A hand-rolled blocking TCP reactor for the serving protocol.
//!
//! No async runtime (the workspace builds with its vendored dependency
//! set): one accept thread, one reader thread per connection feeding a
//! channel, and a single core thread that owns the [`SessionRegistry`]
//! and all writers. The core drains the channel in micro-batches — after
//! the first message it keeps reading until [`ServerConfig::batch_window`]
//! elapses with nothing new (or [`ServerConfig::max_drain`] messages) —
//! so concurrent users' round scans land in the same
//! [`SessionRegistry::pump_all`] and coalesce into shared `top1_batch`
//! calls.
//!
//! **Operational observability** (DESIGN.md §16): every accepted
//! `hello`/`answer` is a *request* with a server-assigned id; the frame it
//! produces echoes that id plus the connection id, and (when telemetry is
//! on) a `serve_round` event tags the request's server-side latency with
//! the `(conn, req)` pair. A rolling-window [`RollingSketch`] of those
//! latencies backs the read-only `stats` frame, answered inline from the
//! core thread without pausing session processing. A [`FlightRecorder`]
//! ring keeps the last rounds' span trees (the whole batch runs inside a
//! `serve_batch` profile scope); a round breaching
//! `slow_factor × rolling p99` dumps a `slow_round` event explaining
//! where the time went. The profile scope and flight recorder are armed
//! only while the telemetry sink is enabled, so an untraced server keeps
//! the zero-instrumentation fast path.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::serving::protocol::{ClientFrame, ServerFrame};
use crate::serving::{BatchStats, ServePolicy, SessionRegistry};
use isrl_data::Dataset;
use isrl_obs::json::Json;
use isrl_obs::{FlightRecord, FlightRecorder, RollingSketch};

/// Reactor knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// How long the core waits for further traffic after a message before
    /// processing the batch. Larger windows coalesce more cross-user
    /// scans at the cost of per-round latency.
    pub batch_window: Duration,
    /// Cap on messages drained per batch.
    pub max_drain: usize,
    /// Horizon of the rolling round-latency sketch behind the `stats`
    /// frame and the flight-recorder threshold.
    pub rolling_window: Duration,
    /// Rounds kept in the flight-recorder ring.
    pub flight_depth: usize,
    /// A round slower than `slow_factor ×` rolling p99 triggers a
    /// `slow_round` dump.
    pub slow_factor: f64,
    /// Rolling-sketch samples required before the slow-round trigger
    /// arms (a cold p99 is noise).
    pub slow_warmup: u64,
    /// Requests to suppress further dumps after one fires — one incident,
    /// one dump, even when the stall's queue backlog drains slowly.
    pub slow_cooldown: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            batch_window: Duration::from_micros(500),
            max_drain: 256,
            rolling_window: Duration::from_secs(30),
            flight_depth: 32,
            slow_factor: 4.0,
            slow_warmup: 64,
            slow_cooldown: 64,
        }
    }
}

/// What the server did over its lifetime, returned by
/// [`ServerHandle::join`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Sessions opened by `hello` frames.
    pub sessions_opened: u64,
    /// Sessions served to their `done` frame.
    pub sessions_completed: u64,
    /// `error` frames sent.
    pub errors: u64,
    /// Requests served (accepted `hello`/`answer` frames).
    pub requests: u64,
    /// `slow_round` flight-recorder dumps emitted.
    pub slow_rounds: u64,
    /// The registry's cross-user batcher counters.
    pub batch: BatchStats,
}

enum Msg {
    /// A connection arrived; the stream is the writer half.
    NewConn(u64, TcpStream),
    /// One line from a connection.
    Line(u64, String),
    /// A connection's reader hit EOF or an error.
    Closed(u64),
    /// Stop serving ([`ServerHandle::shutdown`]).
    Stop,
}

/// A running server. Dropping the handle does not stop it — call
/// [`join`](Self::join) (waits for a client `shutdown` frame) or
/// [`shutdown`](Self::shutdown).
pub struct ServerHandle {
    addr: SocketAddr,
    tx: Sender<Msg>,
    core: JoinHandle<ServerStats>,
    accept: JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits until the server stops (a client sends `shutdown`) and
    /// returns its lifetime stats.
    pub fn join(self) -> ServerStats {
        let stats = self.core.join().expect("server core thread panicked");
        let _ = self.accept.join();
        stats
    }

    /// Asks the server to stop now and waits for it.
    pub fn shutdown(self) -> ServerStats {
        let _ = self.tx.send(Msg::Stop);
        self.join()
    }
}

/// Binds `cfg.addr` and spawns the reactor over the given dataset and
/// policies. Returns once the listener is live.
pub fn spawn_server(
    data: Arc<Dataset>,
    policies: Vec<Arc<ServePolicy>>,
    cfg: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let (tx, rx) = channel::<Msg>();
    let stop = Arc::new(AtomicBool::new(false));

    let accept = {
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(listener, tx, stop))
    };
    let core = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || core_loop(data, policies, cfg, rx, stop, addr))
    };
    Ok(ServerHandle {
        addr,
        tx,
        core,
        accept,
    })
}

fn accept_loop(listener: TcpListener, tx: Sender<Msg>, stop: Arc<AtomicBool>) {
    let mut next_conn = 1u64;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let conn = next_conn;
        next_conn += 1;
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        // NewConn is enqueued before the reader thread exists, so the core
        // always learns of the writer before the connection's first line.
        if tx.send(Msg::NewConn(conn, writer)).is_err() {
            return;
        }
        let tx = tx.clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if tx.send(Msg::Line(conn, line)).is_err() {
                    return;
                }
            }
            let _ = tx.send(Msg::Closed(conn));
        });
    }
}

/// One request accepted this batch, owing its connection a frame.
struct Touched {
    conn: u64,
    sid: u64,
    /// Server-assigned request id.
    req: u64,
    /// When the request was accepted on the core thread.
    accepted: Instant,
}

/// The single thread that owns all serving state.
struct Core {
    registry: SessionRegistry,
    /// Writer half of each live connection.
    writers: BTreeMap<u64, TcpStream>,
    /// Which connection owns each live session.
    owner: BTreeMap<u64, u64>,
    stats: ServerStats,
    /// Requests accepted this batch whose sessions owe a frame.
    touched: Vec<Touched>,
    stopping: bool,
    cfg: ServerConfig,
    started: Instant,
    /// Next request id (globally unique, starts at 1).
    next_req: u64,
    /// Per session: the request id carried by the last `question` frame,
    /// which a client-supplied `req` echo must match.
    last_req: BTreeMap<u64, u64>,
    /// Connections ever accepted.
    conns_opened: u64,
    /// Error counts by machine-readable kind.
    errors_by_kind: BTreeMap<&'static str, u64>,
    /// Rolling server-side request latencies (ms).
    rolling: RollingSketch,
    flight: FlightRecorder,
    /// Requests since the last `slow_round` dump (starts saturated so the
    /// first incident can fire).
    since_slow: u64,
    /// Messages drained in the last micro-batch (for the `stats` frame).
    last_drained: u64,
    /// Messages handled in the current micro-batch.
    batch_msgs: u64,
}

fn core_loop(
    data: Arc<Dataset>,
    policies: Vec<Arc<ServePolicy>>,
    cfg: ServerConfig,
    rx: Receiver<Msg>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
) -> ServerStats {
    let mut registry = SessionRegistry::new(data);
    for policy in policies {
        registry.register(policy);
    }
    let mut core = Core {
        registry,
        writers: BTreeMap::new(),
        owner: BTreeMap::new(),
        stats: ServerStats::default(),
        touched: Vec::new(),
        stopping: false,
        started: Instant::now(),
        next_req: 1,
        last_req: BTreeMap::new(),
        conns_opened: 0,
        errors_by_kind: BTreeMap::new(),
        rolling: RollingSketch::new(0.01, cfg.rolling_window, 6),
        flight: FlightRecorder::new(cfg.flight_depth),
        since_slow: cfg.slow_cooldown,
        last_drained: 0,
        batch_msgs: 0,
        cfg,
    };

    while !core.stopping {
        let first = match rx.recv() {
            Ok(m) => m,
            Err(_) => break,
        };
        core.handle(first);
        // Micro-batch: keep draining while traffic is arriving back to
        // back, so concurrent sessions advance in one pump.
        while !core.stopping && core.touched.len() < core.cfg.max_drain {
            match rx.recv_timeout(core.cfg.batch_window) {
                Ok(m) => core.handle(m),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    core.stopping = true;
                    break;
                }
            }
        }
        core.advance();
    }

    // Unblock the accept loop (it is parked in `accept`) with a dummy
    // connection, then drop every client connection.
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr);
    for stream in core.writers.values() {
        let _ = stream.shutdown(Shutdown::Both);
    }
    core.stats.batch = core.registry.stats();
    core.stats
}

impl Core {
    fn handle(&mut self, msg: Msg) {
        self.batch_msgs += 1;
        match msg {
            Msg::NewConn(conn, stream) => {
                self.conns_opened += 1;
                self.writers.insert(conn, stream);
            }
            Msg::Closed(conn) => {
                self.writers.remove(&conn);
                let orphaned: Vec<u64> = self
                    .owner
                    .iter()
                    .filter(|&(_, &c)| c == conn)
                    .map(|(&sid, _)| sid)
                    .collect();
                for sid in orphaned {
                    self.drop_session(sid);
                }
            }
            Msg::Line(conn, line) => self.handle_line(conn, &line),
            Msg::Stop => self.stopping = true,
        }
    }

    fn drop_session(&mut self, sid: u64) {
        self.owner.remove(&sid);
        self.last_req.remove(&sid);
        self.registry.close(sid);
    }

    fn handle_line(&mut self, conn: u64, line: &str) {
        let frame = match ClientFrame::parse(line) {
            Ok(f) => f,
            Err(message) => {
                self.error(conn, None, None, "parse", message);
                return;
            }
        };
        match frame {
            ClientFrame::Hello { algo, eps, seed } => match self.registry.open(algo, eps, seed) {
                Ok(sid) => {
                    self.owner.insert(sid, conn);
                    self.stats.sessions_opened += 1;
                    self.accept_request(conn, sid);
                }
                Err(e) => self.error(conn, None, None, "open", e.to_string()),
            },
            ClientFrame::Answer {
                session,
                round,
                choice,
                req,
            } => {
                // A session is only addressable from the connection that
                // opened it.
                if self.owner.get(&session) != Some(&conn) {
                    self.error(
                        conn,
                        Some(session),
                        req,
                        "unknown_session",
                        format!("unknown session {session}"),
                    );
                    return;
                }
                let live = self
                    .registry
                    .session(session)
                    .expect("owned session must be live");
                if live.current_question().is_none() {
                    self.error(
                        conn,
                        Some(session),
                        req,
                        "no_pending",
                        "no question is pending".to_string(),
                    );
                    return;
                }
                let expected = live.rounds() as u64 + 1;
                if round != expected {
                    self.error(
                        conn,
                        Some(session),
                        req,
                        "stale_round",
                        format!("unexpected round {round} (the pending round is {expected})"),
                    );
                    return;
                }
                // An answer may echo the question frame's request id; a
                // mismatch means the client answered a question it never
                // saw (split-brain or replay) — reject without touching
                // the session.
                if let Some(echo) = req {
                    let pending = self.last_req.get(&session).copied();
                    if pending != Some(echo) {
                        self.error(
                            conn,
                            Some(session),
                            req,
                            "req_mismatch",
                            format!(
                                "request id {echo} does not match the pending question{}",
                                pending.map_or(String::new(), |p| format!(" (expected {p})"))
                            ),
                        );
                        return;
                    }
                }
                match self.registry.answer(session, choice) {
                    Ok(()) => self.accept_request(conn, session),
                    Err(e) => self.error(conn, Some(session), req, "no_pending", e.to_string()),
                }
            }
            ClientFrame::Stats { detail } => {
                let frame = self.stats_frame(conn, detail);
                self.send(conn, &frame);
            }
            ClientFrame::Shutdown => self.stopping = true,
        }
    }

    /// Assigns a request id and queues the session for this batch's pump.
    fn accept_request(&mut self, conn: u64, sid: u64) {
        let req = self.next_req;
        self.next_req += 1;
        self.touched.push(Touched {
            conn,
            sid,
            req,
            accepted: Instant::now(),
        });
    }

    /// Runs the coalesced scans for everything that moved this batch, then
    /// sends each touched session's next frame.
    fn advance(&mut self) {
        self.last_drained = std::mem::take(&mut self.batch_msgs);
        if self.touched.is_empty() {
            return;
        }
        // Arm the profile scope only when telemetry is on: an unconditional
        // scope would put every span on the slow path and show up in
        // `serve.round_p99`.
        let profiling = isrl_obs::enabled();
        if profiling {
            isrl_obs::profile_begin();
        }
        let mut responded: Vec<(u64, u64, u64, u64, f64)> = Vec::new(); // (conn, sid, req, round, ms)
        {
            let _batch = isrl_obs::span("serve_batch");
            let pump_started = Instant::now();
            self.registry.pump_all();
            isrl_obs::sketch_record("serve.pump_ms", pump_started.elapsed().as_secs_f64() * 1e3);

            let touched = std::mem::take(&mut self.touched);
            for t in touched {
                let Some(session) = self.registry.session(t.sid) else {
                    continue; // connection closed in the same batch
                };
                let round;
                if session.is_finished() {
                    let index = session
                        .recommendation()
                        .expect("a finished serving session always has a recommendation");
                    round = session.rounds() as u64;
                    let frame = ServerFrame::Done {
                        conn: t.conn,
                        session: t.sid,
                        req: t.req,
                        rounds: round,
                        index: index as u64,
                        tuple: self.registry.data().point(index).to_vec(),
                        truncated: session.truncated(),
                    };
                    if isrl_obs::enabled() {
                        isrl_obs::emit(
                            isrl_obs::Event::new("serve_session")
                                .field("algo", session.algo().label())
                                .field("user", t.sid)
                                .field("conn", t.conn)
                                .field("rounds", round)
                                .field("ms", session.elapsed().as_secs_f64() * 1e3),
                        );
                    }
                    self.drop_session(t.sid);
                    self.stats.sessions_completed += 1;
                    self.send(t.conn, &frame);
                } else {
                    round = session.rounds() as u64 + 1;
                    let (option1, option2) = {
                        let (a, b) = session
                            .current_points()
                            .expect("an unfinished pumped session has a question");
                        (a.to_vec(), b.to_vec())
                    };
                    let frame = ServerFrame::Question {
                        conn: t.conn,
                        session: t.sid,
                        round,
                        req: t.req,
                        option1,
                        option2,
                    };
                    self.last_req.insert(t.sid, t.req);
                    self.send(t.conn, &frame);
                }
                let ms = t.accepted.elapsed().as_secs_f64() * 1e3;
                // `round` here is the round the *response* opens (or the
                // final count for `done`); the hello → first-question
                // request reports round 0.
                let reported_round = round.saturating_sub(1);
                responded.push((t.conn, t.sid, t.req, reported_round, ms));
            }
        }
        let pairs = if profiling {
            isrl_obs::profile_end()
        } else {
            Vec::new()
        };
        self.finish_batch(&responded, pairs, profiling);
    }

    /// Post-batch accounting: telemetry events, the rolling sketch, and
    /// the flight-recorder slow-round trigger.
    fn finish_batch(
        &mut self,
        responded: &[(u64, u64, u64, u64, f64)],
        pairs: Vec<(String, u64, Duration)>,
        profiling: bool,
    ) {
        self.stats.requests += responded.len() as u64;
        // Threshold from the rolling p99 *before* this batch is recorded,
        // so one stall cannot raise the bar it is judged against.
        let summary = self.rolling.summary();
        let warm = summary.count >= self.cfg.slow_warmup;
        let threshold_ms = self.cfg.slow_factor * summary.p99;

        let mut worst: Option<&(u64, u64, u64, u64, f64)> = None;
        for r in responded {
            let (conn, sid, req, round, ms) = *r;
            self.rolling.record(ms);
            if profiling {
                isrl_obs::add("serve.requests", 1);
                isrl_obs::emit(
                    isrl_obs::Event::new("serve_round")
                        .field("conn", conn)
                        .field("req", req)
                        .field("session", sid)
                        .field("round", round)
                        .field("ms", ms),
                );
                self.flight.record(FlightRecord {
                    conn,
                    req,
                    session: sid,
                    round,
                    ms,
                    spans: pairs.clone(),
                });
                if ms > threshold_ms && worst.map_or(true, |w| ms > w.4) {
                    worst = Some(r);
                }
            }
        }
        if !profiling {
            return;
        }
        // At most one dump per batch (the whole batch shares one stall),
        // and none inside the cooldown after an incident.
        let fired = match worst {
            Some(&(conn, sid, req, round, ms))
                if warm && self.since_slow >= self.cfg.slow_cooldown =>
            {
                let record = FlightRecord {
                    conn,
                    req,
                    session: sid,
                    round,
                    ms,
                    spans: pairs,
                };
                isrl_obs::emit(
                    self.flight
                        .slow_round_event(&record, threshold_ms, summary.p99),
                );
                isrl_obs::add("serve.slow_rounds", 1);
                self.stats.slow_rounds += 1;
                true
            }
            _ => false,
        };
        if fired {
            self.since_slow = 0;
        } else {
            self.since_slow = self.since_slow.saturating_add(responded.len() as u64);
        }
        isrl_obs::gauge_set(
            "serve.round_p99_us",
            (self.rolling.summary().p99 * 1e3) as u64,
        );
    }

    /// Builds the read-only RED-metrics snapshot answering a `stats`
    /// frame. Everything is already owned by the core thread, so this is
    /// a map scan — no pump, no pause.
    fn stats_frame(&mut self, conn: u64, detail: bool) -> ServerFrame {
        let busy: BTreeSet<u64> = self.owner.values().copied().collect();
        let round = self.rolling.summary();
        let batch = self.registry.stats();
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        let errors = obj(self
            .errors_by_kind
            .iter()
            .map(|(k, v)| (*k, Json::from(*v)))
            .collect());
        let mut fields = vec![
            ("kind", Json::from("stats")),
            ("conn", Json::from(conn)),
            (
                "uptime_ms",
                Json::from(self.started.elapsed().as_secs_f64() * 1e3),
            ),
            (
                "connections",
                obj(vec![
                    ("active", Json::from(self.writers.len())),
                    ("busy", Json::from(busy.len())),
                    (
                        "idle",
                        Json::from(self.writers.len().saturating_sub(busy.len())),
                    ),
                    ("opened", Json::from(self.conns_opened)),
                ]),
            ),
            (
                "sessions",
                obj(vec![
                    ("active", Json::from(self.owner.len())),
                    ("opened", Json::from(self.stats.sessions_opened)),
                    ("completed", Json::from(self.stats.sessions_completed)),
                    ("errors", Json::from(self.stats.errors)),
                ]),
            ),
            (
                "requests",
                obj(vec![
                    ("total", Json::from(self.stats.requests)),
                    ("window_s", Json::from(self.rolling.window().as_secs_f64())),
                    ("rate_per_s", Json::from(self.rolling.rate_per_sec())),
                ]),
            ),
            (
                "round_ms",
                obj(vec![
                    ("count", Json::from(round.count)),
                    ("p50", Json::from(round.p50)),
                    ("p90", Json::from(round.p90)),
                    ("p99", Json::from(round.p99)),
                    ("max", Json::from(round.max)),
                ]),
            ),
            ("errors_by_kind", errors),
            (
                "batch",
                obj(vec![
                    ("calls", Json::from(batch.calls)),
                    ("coalesced", Json::from(batch.coalesced)),
                    ("sessions_scanned", Json::from(batch.sessions_scanned)),
                    ("utilities", Json::from(batch.utilities)),
                    ("window_occupancy", Json::from(self.last_drained)),
                ]),
            ),
            (
                "flight",
                obj(vec![
                    ("depth", Json::from(self.flight.cap())),
                    ("buffered", Json::from(self.flight.len())),
                    ("recorded", Json::from(self.flight.recorded())),
                    ("slow_rounds", Json::from(self.stats.slow_rounds)),
                ]),
            ),
        ];
        if detail {
            let per_conn = Json::Arr(
                self.writers
                    .keys()
                    .map(|&c| {
                        let sessions = self.owner.values().filter(|&&o| o == c).count();
                        obj(vec![
                            ("conn", Json::from(c)),
                            ("sessions", Json::from(sessions)),
                        ])
                    })
                    .collect(),
            );
            fields.push(("per_conn", per_conn));
        }
        ServerFrame::Stats { body: obj(fields) }
    }

    fn error(
        &mut self,
        conn: u64,
        session: Option<u64>,
        req: Option<u64>,
        code: &'static str,
        message: String,
    ) {
        self.stats.errors += 1;
        *self.errors_by_kind.entry(code).or_insert(0) += 1;
        if isrl_obs::enabled() {
            isrl_obs::emit(
                isrl_obs::Event::new("serve_error")
                    .field("conn", conn)
                    .field("kind", code),
            );
        }
        let frame = ServerFrame::Error {
            conn,
            session,
            req,
            code: code.to_string(),
            message,
        };
        self.send(conn, &frame);
    }

    fn send(&mut self, conn: u64, frame: &ServerFrame) {
        let Some(stream) = self.writers.get_mut(&conn) else {
            return;
        };
        let ok = writeln!(stream, "{}", frame.to_line())
            .and_then(|_| stream.flush())
            .is_ok();
        if !ok {
            self.writers.remove(&conn);
        }
    }
}
