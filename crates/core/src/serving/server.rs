//! A hand-rolled blocking TCP reactor for the serving protocol.
//!
//! No async runtime (the workspace builds with its vendored dependency
//! set): one accept thread, one reader thread per connection feeding a
//! channel, and a single core thread that owns the [`SessionRegistry`]
//! and all writers. The core drains the channel in micro-batches — after
//! the first message it keeps reading until [`ServerConfig::batch_window`]
//! elapses with nothing new (or [`ServerConfig::max_drain`] messages) —
//! so concurrent users' round scans land in the same
//! [`SessionRegistry::pump_all`] and coalesce into shared `top1_batch`
//! calls.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::serving::protocol::{ClientFrame, ServerFrame};
use crate::serving::{BatchStats, ServePolicy, SessionRegistry};
use isrl_data::Dataset;

/// Reactor knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// How long the core waits for further traffic after a message before
    /// processing the batch. Larger windows coalesce more cross-user
    /// scans at the cost of per-round latency.
    pub batch_window: Duration,
    /// Cap on messages drained per batch.
    pub max_drain: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            batch_window: Duration::from_micros(500),
            max_drain: 256,
        }
    }
}

/// What the server did over its lifetime, returned by
/// [`ServerHandle::join`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Sessions opened by `hello` frames.
    pub sessions_opened: u64,
    /// Sessions served to their `done` frame.
    pub sessions_completed: u64,
    /// `error` frames sent.
    pub errors: u64,
    /// The registry's cross-user batcher counters.
    pub batch: BatchStats,
}

enum Msg {
    /// A connection arrived; the stream is the writer half.
    NewConn(u64, TcpStream),
    /// One line from a connection.
    Line(u64, String),
    /// A connection's reader hit EOF or an error.
    Closed(u64),
    /// Stop serving ([`ServerHandle::shutdown`]).
    Stop,
}

/// A running server. Dropping the handle does not stop it — call
/// [`join`](Self::join) (waits for a client `shutdown` frame) or
/// [`shutdown`](Self::shutdown).
pub struct ServerHandle {
    addr: SocketAddr,
    tx: Sender<Msg>,
    core: JoinHandle<ServerStats>,
    accept: JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits until the server stops (a client sends `shutdown`) and
    /// returns its lifetime stats.
    pub fn join(self) -> ServerStats {
        let stats = self.core.join().expect("server core thread panicked");
        let _ = self.accept.join();
        stats
    }

    /// Asks the server to stop now and waits for it.
    pub fn shutdown(self) -> ServerStats {
        let _ = self.tx.send(Msg::Stop);
        self.join()
    }
}

/// Binds `cfg.addr` and spawns the reactor over the given dataset and
/// policies. Returns once the listener is live.
pub fn spawn_server(
    data: Arc<Dataset>,
    policies: Vec<Arc<ServePolicy>>,
    cfg: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let (tx, rx) = channel::<Msg>();
    let stop = Arc::new(AtomicBool::new(false));

    let accept = {
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(listener, tx, stop))
    };
    let core = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || core_loop(data, policies, cfg, rx, stop, addr))
    };
    Ok(ServerHandle {
        addr,
        tx,
        core,
        accept,
    })
}

fn accept_loop(listener: TcpListener, tx: Sender<Msg>, stop: Arc<AtomicBool>) {
    let mut next_conn = 1u64;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let conn = next_conn;
        next_conn += 1;
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        // NewConn is enqueued before the reader thread exists, so the core
        // always learns of the writer before the connection's first line.
        if tx.send(Msg::NewConn(conn, writer)).is_err() {
            return;
        }
        let tx = tx.clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if tx.send(Msg::Line(conn, line)).is_err() {
                    return;
                }
            }
            let _ = tx.send(Msg::Closed(conn));
        });
    }
}

/// The single thread that owns all serving state.
struct Core {
    registry: SessionRegistry,
    /// Writer half of each live connection.
    writers: BTreeMap<u64, TcpStream>,
    /// Which connection owns each live session.
    owner: BTreeMap<u64, u64>,
    stats: ServerStats,
    /// Sessions that advanced this batch and owe their owner a frame.
    touched: Vec<(u64, u64)>,
    stopping: bool,
}

fn core_loop(
    data: Arc<Dataset>,
    policies: Vec<Arc<ServePolicy>>,
    cfg: ServerConfig,
    rx: Receiver<Msg>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
) -> ServerStats {
    let mut registry = SessionRegistry::new(data);
    for policy in policies {
        registry.register(policy);
    }
    let mut core = Core {
        registry,
        writers: BTreeMap::new(),
        owner: BTreeMap::new(),
        stats: ServerStats::default(),
        touched: Vec::new(),
        stopping: false,
    };

    while !core.stopping {
        let first = match rx.recv() {
            Ok(m) => m,
            Err(_) => break,
        };
        core.handle(first);
        // Micro-batch: keep draining while traffic is arriving back to
        // back, so concurrent sessions advance in one pump.
        while !core.stopping && core.touched.len() < cfg.max_drain {
            match rx.recv_timeout(cfg.batch_window) {
                Ok(m) => core.handle(m),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    core.stopping = true;
                    break;
                }
            }
        }
        core.advance();
    }

    // Unblock the accept loop (it is parked in `accept`) with a dummy
    // connection, then drop every client connection.
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr);
    for stream in core.writers.values() {
        let _ = stream.shutdown(Shutdown::Both);
    }
    core.stats.batch = core.registry.stats();
    core.stats
}

impl Core {
    fn handle(&mut self, msg: Msg) {
        match msg {
            Msg::NewConn(conn, stream) => {
                self.writers.insert(conn, stream);
            }
            Msg::Closed(conn) => {
                self.writers.remove(&conn);
                let orphaned: Vec<u64> = self
                    .owner
                    .iter()
                    .filter(|&(_, &c)| c == conn)
                    .map(|(&sid, _)| sid)
                    .collect();
                for sid in orphaned {
                    self.owner.remove(&sid);
                    self.registry.close(sid);
                }
            }
            Msg::Line(conn, line) => self.handle_line(conn, &line),
            Msg::Stop => self.stopping = true,
        }
    }

    fn handle_line(&mut self, conn: u64, line: &str) {
        let frame = match ClientFrame::parse(line) {
            Ok(f) => f,
            Err(message) => {
                self.error(conn, None, message);
                return;
            }
        };
        match frame {
            ClientFrame::Hello { algo, eps, seed } => match self.registry.open(algo, eps, seed) {
                Ok(sid) => {
                    self.owner.insert(sid, conn);
                    self.stats.sessions_opened += 1;
                    self.touched.push((conn, sid));
                }
                Err(e) => self.error(conn, None, e.to_string()),
            },
            ClientFrame::Answer {
                session,
                round,
                choice,
            } => {
                // A session is only addressable from the connection that
                // opened it.
                if self.owner.get(&session) != Some(&conn) {
                    self.error(conn, Some(session), format!("unknown session {session}"));
                    return;
                }
                let live = self
                    .registry
                    .session(session)
                    .expect("owned session must be live");
                if live.current_question().is_none() {
                    self.error(conn, Some(session), "no question is pending".to_string());
                    return;
                }
                let expected = live.rounds() as u64 + 1;
                if round != expected {
                    self.error(
                        conn,
                        Some(session),
                        format!("unexpected round {round} (the pending round is {expected})"),
                    );
                    return;
                }
                match self.registry.answer(session, choice) {
                    Ok(()) => self.touched.push((conn, session)),
                    Err(e) => self.error(conn, Some(session), e.to_string()),
                }
            }
            ClientFrame::Shutdown => self.stopping = true,
        }
    }

    /// Runs the coalesced scans for everything that moved this batch, then
    /// sends each touched session's next frame.
    fn advance(&mut self) {
        if self.touched.is_empty() {
            return;
        }
        let pump_started = Instant::now();
        self.registry.pump_all();
        isrl_obs::sketch_record("serve.pump_ms", pump_started.elapsed().as_secs_f64() * 1e3);

        let touched = std::mem::take(&mut self.touched);
        for (conn, sid) in touched {
            let Some(session) = self.registry.session(sid) else {
                continue; // connection closed in the same batch
            };
            if session.is_finished() {
                let index = session
                    .recommendation()
                    .expect("a finished serving session always has a recommendation");
                let frame = ServerFrame::Done {
                    session: sid,
                    rounds: session.rounds() as u64,
                    index: index as u64,
                    tuple: self.registry.data().point(index).to_vec(),
                    truncated: session.truncated(),
                };
                if isrl_obs::enabled() {
                    isrl_obs::emit(
                        isrl_obs::Event::new("serve_session")
                            .field("algo", session.algo().label())
                            .field("user", sid)
                            .field("rounds", session.rounds() as u64)
                            .field("ms", session.elapsed().as_secs_f64() * 1e3),
                    );
                }
                self.owner.remove(&sid);
                self.registry.close(sid);
                self.stats.sessions_completed += 1;
                self.send(conn, &frame);
            } else {
                let (option1, option2) = {
                    let (a, b) = session
                        .current_points()
                        .expect("an unfinished pumped session has a question");
                    (a.to_vec(), b.to_vec())
                };
                let frame = ServerFrame::Question {
                    session: sid,
                    round: session.rounds() as u64 + 1,
                    option1,
                    option2,
                };
                self.send(conn, &frame);
            }
        }
    }

    fn error(&mut self, conn: u64, session: Option<u64>, message: String) {
        self.stats.errors += 1;
        let frame = ServerFrame::Error { session, message };
        self.send(conn, &frame);
    }

    fn send(&mut self, conn: u64, frame: &ServerFrame) {
        let Some(stream) = self.writers.get_mut(&conn) else {
            return;
        };
        let ok = writeln!(stream, "{}", frame.to_line())
            .and_then(|_| stream.flush())
            .is_ok();
        if !ok {
            self.writers.remove(&conn);
        }
    }
}
