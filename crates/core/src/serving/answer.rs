//! The one place that maps a user's pairwise answer onto "prefers the
//! first option". The stdin interview, the JSON protocol, and the tests
//! all share these two functions so their accepted inputs cannot drift.

/// Parses a textual answer: `"1"` = the first option is preferred,
/// `"2"` = the second. Surrounding whitespace is ignored; anything else
/// (empty, `"3"`, `"yes"`, …) is `None` and callers must re-prompt or
/// reply with an `error` frame.
pub fn parse_choice(text: &str) -> Option<bool> {
    match text.trim() {
        "1" => Some(true),
        "2" => Some(false),
        _ => None,
    }
}

/// Same mapping for a JSON number: exactly `1` or `2` (no fractions, no
/// other values).
pub fn choice_from_number(x: f64) -> Option<bool> {
    if x == 1.0 {
        Some(true)
    } else if x == 2.0 {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_only_one_and_two() {
        assert_eq!(parse_choice("1"), Some(true));
        assert_eq!(parse_choice("2"), Some(false));
        assert_eq!(parse_choice(" 1\n"), Some(true));
        for bad in ["", "0", "3", "12", "yes", "one", "1.0", "-1"] {
            assert_eq!(parse_choice(bad), None, "{bad:?} must be rejected");
        }
        assert_eq!(choice_from_number(1.0), Some(true));
        assert_eq!(choice_from_number(2.0), Some(false));
        for bad in [0.0, 3.0, 1.5, -1.0, f64::NAN] {
            assert_eq!(choice_from_number(bad), None, "{bad} must be rejected");
        }
    }
}
