//! An owned per-user interaction state machine with externally supplied
//! dataset scans.
//!
//! [`EaSession`](crate::ea::EaSession)/[`AaSession`](crate::aa::AaSession)
//! borrow their agent mutably and scan the dataset inline — one user at a
//! time. A [`ServeSession`] instead *owns* all per-user state (region
//! geometry, RNG, asked-set, DQN scratch) and shares the policy and
//! dataset behind `Arc`s, and every round's dataset scan is surfaced as a
//! take/provide pair so the [`SessionRegistry`](super::SessionRegistry)
//! can batch scans across users. The split is RNG-exact: given the same
//! seed, a `ServeSession` asks byte-identical question sequences to the
//! borrowing sessions (pinned by `tests/serve_isolation.rs`).

use std::sync::Arc;

use crate::aa::{aa_actions, aa_phase1, AaPhase1};
use crate::ea::{ea_actions, ea_phase1, ea_sample_extras, ea_verdict};
use crate::interaction::{Question, Stopwatch};
use crate::serving::ServePolicy;
use isrl_data::Dataset;
use isrl_geometry::{Halfspace, RegionGeometry};
use isrl_linalg::Top1;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use super::AlgoKind;

/// Errors from the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The dataset has no points to recommend.
    EmptyDataset,
    /// The policy was trained for a different dimensionality.
    DimensionMismatch {
        /// The policy's dimensionality.
        policy: usize,
        /// The dataset's dimensionality.
        data: usize,
    },
    /// `eps` must be a finite positive number.
    BadEpsilon(f64),
    /// `answer` arrived while no question was pending.
    NoPendingQuestion,
    /// No policy of the requested algorithm is registered.
    UnsupportedAlgorithm(AlgoKind),
    /// The session id is not (or no longer) live.
    UnknownSession(u64),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::EmptyDataset => write!(f, "cannot serve an empty dataset"),
            ServeError::DimensionMismatch { policy, data } => {
                write!(f, "policy is {policy}-d but the dataset is {data}-d")
            }
            ServeError::BadEpsilon(e) => write!(f, "eps must be finite and positive, got {e}"),
            ServeError::NoPendingQuestion => write!(f, "no question is pending"),
            ServeError::UnsupportedAlgorithm(kind) => {
                write!(f, "no {} policy is registered", kind.as_str())
            }
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Pre-scan context carried across a pending scan.
enum Phase1 {
    /// EA: the encoded state (utilities are `[region points.., centroid]`).
    Ea { state: Vec<f64> },
    /// AA: the LP summary (the single utility is the rectangle midpoint).
    Aa(AaPhase1),
}

/// Where the session's round state machine stands.
enum Stage {
    /// Waiting for the round-opening scan. `utilities` is `Some` until the
    /// batcher takes them.
    Scan1 {
        utilities: Option<Vec<Vec<f64>>>,
        pre: Phase1,
    },
    /// EA on the exact backend only: the terminal check said non-terminal,
    /// extra region samples were drawn, and their scans are pending.
    /// `points_top1` keeps the phase-1 per-vertex argmaxes so `P_R` can be
    /// assembled in the inline path's exact order.
    Scan2 {
        utilities: Option<Vec<Vec<f64>>>,
        state: Vec<f64>,
        points_top1: Vec<usize>,
    },
    /// A question is pending with the user.
    Ask { question: Question },
    /// Finished — a recommendation is available.
    Done,
}

/// One live user interaction, decoupled from the dataset scan.
///
/// Lifecycle per round: when [`needs_scan`](Self::needs_scan), the driver
/// takes the pending utility vectors ([`take_scan_utilities`]
/// (Self::take_scan_utilities)), computes their dataset top-1s (typically
/// batched with other sessions' scans), and hands the results back
/// ([`provide_scan`](Self::provide_scan)); EA on the exact backend needs
/// two such exchanges per round. The session then either finishes or
/// exposes [`current_question`](Self::current_question), and
/// [`answer`](Self::answer) starts the next round. [`step_blocking`]
/// (Self::step_blocking) runs the exchanges inline for unbatched callers
/// (the stdin interview, differential tests).
pub struct ServeSession {
    policy: Arc<ServePolicy>,
    data: Arc<Dataset>,
    eps: f64,
    rng: StdRng,
    geom: RegionGeometry,
    asked: Vec<(usize, usize)>,
    rounds: usize,
    truncated: bool,
    scratch: Vec<f64>,
    stage: Stage,
    recommendation: Option<usize>,
    sw: Stopwatch,
}

impl ServeSession {
    /// Opens a session. `seed` drives all per-session randomness (region
    /// sampling, action-space subsampling); the policy itself is never
    /// mutated. The session starts in the scan-pending state.
    pub fn new(
        policy: Arc<ServePolicy>,
        data: Arc<Dataset>,
        eps: f64,
        seed: u64,
    ) -> Result<Self, ServeError> {
        if data.is_empty() {
            return Err(ServeError::EmptyDataset);
        }
        if policy.dim() != data.dim() {
            return Err(ServeError::DimensionMismatch {
                policy: policy.dim(),
                data: data.dim(),
            });
        }
        if !(eps.is_finite() && eps > 0.0) {
            return Err(ServeError::BadEpsilon(eps));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        // Mirrors `EaAgent::new_geometry` / `AaAgent` setup exactly,
        // including the sampled backend's cloud-seed draw from the session
        // RNG.
        let geom = match &*policy {
            ServePolicy::Ea(a) => {
                if a.config().geometry.resolves_to_sampled(a.dim()) {
                    RegionGeometry::sampled(a.dim(), a.config().walk, rng.next_u64())
                } else {
                    RegionGeometry::exact(a.dim())
                }
            }
            ServePolicy::Aa(a) => {
                let mut g = RegionGeometry::summary_only(a.dim());
                g.set_warm_lp(a.config().warm_lp);
                g
            }
        };
        let mut session = Self {
            policy,
            data,
            eps,
            rng,
            geom,
            asked: Vec::new(),
            rounds: 0,
            truncated: false,
            scratch: Vec::new(),
            stage: Stage::Done,
            recommendation: None,
            sw: Stopwatch::start(),
        };
        session.plan();
        Ok(session)
    }

    /// The algorithm this session runs.
    pub fn algo(&self) -> AlgoKind {
        self.policy.algo()
    }

    /// `true` while a scan is pending and its utilities not yet taken.
    pub fn needs_scan(&self) -> bool {
        matches!(
            &self.stage,
            Stage::Scan1 {
                utilities: Some(_),
                ..
            } | Stage::Scan2 {
                utilities: Some(_),
                ..
            }
        )
    }

    /// Takes the pending scan's utility vectors (to be answered with
    /// [`provide_scan`](Self::provide_scan)), or `None` when no scan is
    /// pending.
    pub fn take_scan_utilities(&mut self) -> Option<Vec<Vec<f64>>> {
        match &mut self.stage {
            Stage::Scan1 { utilities, .. } | Stage::Scan2 { utilities, .. } => utilities.take(),
            _ => None,
        }
    }

    /// Delivers the top-1 results for the taken utility vectors (`top1[k]`
    /// answers `utilities[k]`) and advances the round.
    ///
    /// # Panics
    /// Panics if no scan was taken or the lengths disagree — driver bugs,
    /// not user input.
    pub fn provide_scan(&mut self, utilities: &[Vec<f64>], top1: &[Top1]) {
        assert_eq!(utilities.len(), top1.len(), "scan result length mismatch");
        let stage = std::mem::replace(&mut self.stage, Stage::Done);
        match stage {
            Stage::Scan1 {
                utilities: taken,
                pre,
            } => {
                assert!(taken.is_none(), "scan provided before being taken");
                match pre {
                    Phase1::Ea { state } => self.finish_ea_scan1(utilities, top1, state),
                    Phase1::Aa(pre) => self.finish_aa_scan1(top1, pre),
                }
            }
            Stage::Scan2 {
                utilities: taken,
                state,
                points_top1,
            } => {
                assert!(taken.is_none(), "scan provided before being taken");
                self.finish_ea_scan2(top1, state, points_top1);
            }
            _ => panic!("no scan is pending"),
        }
    }

    /// EA phase 1 done: run the terminal check over the region points'
    /// argmaxes. Terminal → finished; sampled backend → the cloud already
    /// is `V`, so `P_R` is the anchor set and the round goes straight to
    /// action selection; exact backend → draw the extra samples of `V`
    /// (only now, preserving the inline path's property that terminal
    /// rounds consume no RNG) and queue their scans.
    fn finish_ea_scan1(&mut self, utilities: &[Vec<f64>], top1: &[Top1], state: Vec<f64>) {
        let policy = Arc::clone(&self.policy);
        let ServePolicy::Ea(agent) = &*policy else {
            unreachable!("EA scan on a non-EA session");
        };
        let points = &utilities[..utilities.len() - 1];
        let verdict = ea_verdict(&self.data, points, top1, self.eps);
        self.recommendation = Some(verdict.terminal.unwrap_or(verdict.fallback_best));
        if verdict.terminal.is_some() {
            self.stage = Stage::Done;
            return;
        }
        if self.geom.is_sampled() {
            let (questions, feats) = ea_actions(
                agent.config(),
                &self.data,
                &verdict.anchors,
                &self.asked,
                &mut self.rng,
            );
            self.ask(state, questions, feats);
        } else {
            let extras = ea_sample_extras(
                agent.config(),
                agent.dim(),
                &self.geom,
                points,
                &mut self.rng,
            );
            self.stage = Stage::Scan2 {
                utilities: Some(extras),
                state,
                points_top1: top1[..points.len()].iter().map(|t| t.index).collect(),
            };
        }
    }

    /// EA phase 2 done (exact backend): assemble `P_R` as the distinct
    /// argmaxes over `[extra samples.., region vertices..]` in first-
    /// appearance order — exactly `terminal_points` over the inline path's
    /// `samples.extend(vertices)` layout — then select the question.
    fn finish_ea_scan2(&mut self, top1: &[Top1], state: Vec<f64>, points_top1: Vec<usize>) {
        let policy = Arc::clone(&self.policy);
        let ServePolicy::Ea(agent) = &*policy else {
            unreachable!("EA scan on a non-EA session");
        };
        let mut p_r: Vec<usize> = Vec::new();
        for idx in top1.iter().map(|t| t.index).chain(points_top1) {
            if !p_r.contains(&idx) {
                p_r.push(idx);
            }
        }
        let (questions, feats) =
            ea_actions(agent.config(), &self.data, &p_r, &self.asked, &mut self.rng);
        self.ask(state, questions, feats);
    }

    /// AA phase 1 done: the midpoint's top-1 is both the terminal return
    /// and the fallback recommendation (Algorithm 4, line 11).
    fn finish_aa_scan1(&mut self, top1: &[Top1], pre: AaPhase1) {
        let policy = Arc::clone(&self.policy);
        let ServePolicy::Aa(agent) = &*policy else {
            unreachable!("AA scan on a non-AA session");
        };
        self.recommendation = Some(top1[0].index);
        if pre.terminal {
            self.stage = Stage::Done;
            return;
        }
        let (questions, feats) = aa_actions(
            agent.config(),
            agent.dim(),
            &self.data,
            &mut self.geom,
            &pre.center,
            &self.asked,
            &mut self.rng,
        );
        self.ask(pre.state, questions, feats);
    }

    /// Greedy question selection against the shared Q-network, with the
    /// borrowing sessions' truncation rules.
    fn ask(&mut self, state: Vec<f64>, questions: Vec<Question>, feats: Vec<Vec<f64>>) {
        let max_rounds = match &*self.policy {
            ServePolicy::Ea(a) => a.config().max_rounds,
            ServePolicy::Aa(a) => a.config().max_rounds,
        };
        if questions.is_empty() || self.rounds >= max_rounds {
            self.truncated = true;
            self.stage = Stage::Done;
            return;
        }
        let policy = Arc::clone(&self.policy);
        let (idx, _) = policy
            .dqn()
            .best_action_ref(&mut self.scratch, &state, &feats);
        self.stage = Stage::Ask {
            question: questions[idx],
        };
    }

    /// Opens the next round: derive the scan-free phase-1 context from the
    /// current region, or finish truncated when the region has collapsed.
    fn plan(&mut self) {
        let policy = Arc::clone(&self.policy);
        let planned = match &*policy {
            ServePolicy::Ea(agent) => ea_phase1(agent.encoder(), &self.geom)
                .map(|(state, utilities)| (Phase1::Ea { state }, utilities)),
            ServePolicy::Aa(_) => aa_phase1(&mut self.geom, self.eps)
                .map(|(pre, utilities)| (Phase1::Aa(pre), utilities)),
        };
        match planned {
            None => {
                self.truncated = true;
                self.stage = Stage::Done;
            }
            Some((pre, utilities)) => {
                self.stage = Stage::Scan1 {
                    utilities: Some(utilities),
                    pre,
                };
            }
        }
    }

    /// Delivers the user's choice (`true` = first point preferred) and
    /// starts the next round. Unlike the borrowing sessions this returns an
    /// error instead of panicking — in a server, a double answer is user
    /// input, not a bug.
    pub fn answer(&mut self, prefers_first: bool) -> Result<(), ServeError> {
        let Stage::Ask { question: q } = self.stage else {
            return Err(ServeError::NoPendingQuestion);
        };
        let (win, lose) = if prefers_first {
            (q.i, q.j)
        } else {
            (q.j, q.i)
        };
        self.asked.push((q.i.min(q.j), q.i.max(q.j)));
        self.rounds += 1;
        if let Some(h) = Halfspace::preferring(self.data.point(win), self.data.point(lose)) {
            self.geom.add(h);
        }
        self.plan();
        Ok(())
    }

    /// Runs any pending scans inline against the shared dataset — the
    /// unbatched path for single-session callers.
    pub fn step_blocking(&mut self) {
        let data = Arc::clone(&self.data);
        while let Some(utilities) = self.take_scan_utilities() {
            let top1 = {
                let _t = isrl_obs::span("top1");
                data.top1_batch(&utilities)
            };
            self.provide_scan(&utilities, &top1);
        }
    }

    /// The pending question, or `None` while scanning or finished.
    pub fn current_question(&self) -> Option<Question> {
        match &self.stage {
            Stage::Ask { question } => Some(*question),
            _ => None,
        }
    }

    /// The two points of the pending question, for display.
    pub fn current_points(&self) -> Option<(&[f64], &[f64])> {
        match &self.stage {
            Stage::Ask { question } => {
                Some((self.data.point(question.i), self.data.point(question.j)))
            }
            _ => None,
        }
    }

    /// `true` once no further question will be asked.
    pub fn is_finished(&self) -> bool {
        matches!(self.stage, Stage::Done)
    }

    /// Questions answered so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// `true` when the session ended without certifying termination.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The current (or final) recommendation. `None` only before the very
    /// first scan completes.
    pub fn recommendation(&self) -> Option<usize> {
        self.recommendation
    }

    /// Elapsed wall-clock time since the session opened.
    pub fn elapsed(&self) -> std::time::Duration {
        self.sw.elapsed()
    }
}
