//! Protocol-level load generation: N simulated users over real TCP.
//!
//! Each user runs the full `hello → question/answer → done` conversation
//! against a live server, answering from a [`SimulatedUser`] (or
//! [`NoisyUser`]) oracle whose hidden utility vector is derived
//! deterministically from `(seed, user index)`. Because serving sessions
//! are isolated, the per-user question counts are a pure function of the
//! config — independent of concurrency, batching, and scheduling — which
//! the loadgen determinism test pins.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::serving::protocol::{ClientFrame, ServerFrame};
use crate::serving::AlgoKind;
use crate::user::{NoisyUser, SimulatedUser, User};
use isrl_geometry::sampling::sample_simplex;
use isrl_obs::Json;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What to replay.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Number of simulated users.
    pub users: usize,
    /// Worker threads (connections); users are dealt round-robin.
    pub concurrency: usize,
    /// Base seed; user `u` plays utility/seed `mix(seed, u)`.
    pub seed: u64,
    /// Regret threshold ε sent in each `hello`.
    pub eps: f64,
    /// Which algorithm to request.
    pub algo: AlgoKind,
    /// Answer flip probability (0 = the noiseless oracle).
    pub noise: f64,
    /// Send a `shutdown` frame after all users finish.
    pub send_shutdown: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            users: 1,
            concurrency: 8,
            seed: 0,
            eps: 0.1,
            algo: AlgoKind::Ea,
            noise: 0.0,
            send_shutdown: false,
        }
    }
}

/// Aggregated results of a loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Users replayed.
    pub users: usize,
    /// Questions each user answered, indexed by user.
    pub rounds_per_user: Vec<usize>,
    /// Users whose sessions ended truncated.
    pub truncated: usize,
    /// Total questions answered.
    pub rounds_total: usize,
    /// Wall-clock for the whole replay.
    pub elapsed_secs: f64,
    /// Completed sessions per second of wall-clock.
    pub sessions_per_sec: f64,
    /// Median request→response latency (ms) across all rounds.
    pub round_p50_ms: f64,
    /// 99th-percentile request→response latency (ms).
    pub round_p99_ms: f64,
}

impl LoadgenReport {
    /// The report as JSON (the CLI's `--out` / `BENCH_serve.json` format).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("users".into(), self.users.into()),
            ("rounds_total".into(), self.rounds_total.into()),
            ("truncated".into(), self.truncated.into()),
            ("elapsed_secs".into(), self.elapsed_secs.into()),
            ("sessions_per_sec".into(), self.sessions_per_sec.into()),
            ("round_p50_ms".into(), self.round_p50_ms.into()),
            ("round_p99_ms".into(), self.round_p99_ms.into()),
            (
                "rounds_per_user".into(),
                Json::Arr(
                    self.rounds_per_user
                        .iter()
                        .map(|&r| Json::Num(r as f64))
                        .collect(),
                ),
            ),
        ])
    }
}

/// SplitMix64-style per-user seed derivation: decorrelates users while
/// keeping each one a pure function of `(seed, user)`. Masked to 52 bits
/// so the seed survives the wire protocol's exact-JSON-integer fields.
fn mix(seed: u64, user: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(user.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & 0xF_FFFF_FFFF_FFFF
}

struct UserOutcome {
    user: usize,
    rounds: usize,
    truncated: bool,
    latencies_ms: Vec<f64>,
    wall_ms: f64,
    /// Server-assigned connection id (from the wire frames), for the
    /// per-connection `serve_session` tags.
    conn: u64,
}

/// Nearest-rank percentile over already-sorted latencies. Deliberately
/// *not* `norms::percentile`: the loadgen reports the nearest observed
/// sample (p99 of [1,2,3,4,100] is 100, not an interpolated blend), and
/// its inputs are `Instant`-derived so the NaN-propagation policy of the
/// stats module does not apply.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Replays `cfg.users` conversations and aggregates latency/throughput.
/// With the telemetry sink enabled, also records each round into the
/// `serve.round_ms` sketch and emits one `serve_session` event per user.
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if cfg.users == 0 {
        return Err("need at least one user".to_string());
    }
    let concurrency = cfg.concurrency.clamp(1, cfg.users);
    let started = Instant::now();
    let workers: Vec<_> = (0..concurrency)
        .map(|w| {
            let cfg = cfg.clone();
            std::thread::spawn(move || -> Result<Vec<UserOutcome>, String> {
                let stream = TcpStream::connect(&cfg.addr)
                    .map_err(|e| format!("connect {}: {e}", cfg.addr))?;
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .map_err(|e| format!("set_read_timeout: {e}"))?;
                let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
                let mut reader = BufReader::new(stream);
                (w..cfg.users)
                    .step_by(concurrency)
                    .map(|u| run_user(&cfg, u, &mut writer, &mut reader))
                    .collect()
            })
        })
        .collect();

    let mut outcomes: Vec<UserOutcome> = Vec::with_capacity(cfg.users);
    let mut first_err: Option<String> = None;
    for worker in workers {
        match worker.join().expect("loadgen worker panicked") {
            Ok(batch) => outcomes.extend(batch),
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let elapsed_secs = started.elapsed().as_secs_f64();

    if cfg.send_shutdown {
        let mut conn = TcpStream::connect(&cfg.addr)
            .map_err(|e| format!("connect for shutdown {}: {e}", cfg.addr))?;
        writeln!(conn, "{}", ClientFrame::Shutdown.to_line())
            .and_then(|_| conn.flush())
            .map_err(|e| format!("send shutdown: {e}"))?;
    }

    outcomes.sort_by_key(|o| o.user);
    if isrl_obs::enabled() {
        for o in &outcomes {
            for &l in &o.latencies_ms {
                isrl_obs::sketch_record("serve.round_ms", l);
            }
            isrl_obs::emit(
                isrl_obs::Event::new("serve_session")
                    .field("algo", cfg.algo.label())
                    .field("user", o.user as u64)
                    .field("conn", o.conn)
                    .field("rounds", o.rounds as u64)
                    .field("ms", o.wall_ms),
            );
        }
    }

    let rounds_per_user: Vec<usize> = outcomes.iter().map(|o| o.rounds).collect();
    let rounds_total = rounds_per_user.iter().sum();
    let mut all_latencies: Vec<f64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ms.iter().copied())
        .collect();
    all_latencies.sort_by(|a, b| a.total_cmp(b));
    Ok(LoadgenReport {
        users: cfg.users,
        truncated: outcomes.iter().filter(|o| o.truncated).count(),
        rounds_per_user,
        rounds_total,
        elapsed_secs,
        sessions_per_sec: cfg.users as f64 / elapsed_secs.max(1e-9),
        round_p50_ms: percentile(&all_latencies, 0.50),
        round_p99_ms: percentile(&all_latencies, 0.99),
    })
}

/// One user's conversation over an already-connected stream.
fn run_user(
    cfg: &LoadgenConfig,
    user: usize,
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
) -> Result<UserOutcome, String> {
    let user_seed = mix(cfg.seed, user as u64);
    let user_started = Instant::now();
    let mut latencies_ms = Vec::new();
    let mut oracle: Option<Box<dyn User>> = None;
    let mut session_id: Option<u64> = None;

    let hello = ClientFrame::Hello {
        algo: cfg.algo,
        eps: cfg.eps,
        seed: user_seed,
    };
    let mut sent_at = Instant::now();
    send(writer, &hello)?;

    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("user {user}: read: {e}"))?;
        if n == 0 {
            return Err(format!("user {user}: server closed the connection"));
        }
        latencies_ms.push(sent_at.elapsed().as_secs_f64() * 1e3);
        match ServerFrame::parse(line.trim_end()).map_err(|e| format!("user {user}: {e}"))? {
            ServerFrame::Question {
                session,
                round,
                req,
                option1,
                option2,
                ..
            } => {
                match session_id {
                    None => session_id = Some(session),
                    Some(sid) if sid == session => {}
                    Some(sid) => {
                        return Err(format!(
                            "user {user}: question for session {session}, expected {sid}"
                        ));
                    }
                }
                let oracle = oracle.get_or_insert_with(|| {
                    let mut rng = StdRng::seed_from_u64(user_seed);
                    let utility = sample_simplex(option1.len(), &mut rng);
                    if cfg.noise > 0.0 {
                        Box::new(NoisyUser::new(utility, cfg.noise, user_seed)) as Box<dyn User>
                    } else {
                        Box::new(SimulatedUser::new(utility)) as Box<dyn User>
                    }
                });
                let choice = oracle.prefers(&option1, &option2);
                // Echo the request id so the server can verify we are
                // answering the question it actually sent.
                let answer = ClientFrame::Answer {
                    session,
                    round,
                    choice,
                    req: Some(req),
                };
                sent_at = Instant::now();
                send(writer, &answer)?;
            }
            ServerFrame::Done {
                conn,
                session,
                rounds,
                truncated,
                ..
            } => {
                if let Some(sid) = session_id {
                    if sid != session {
                        return Err(format!(
                            "user {user}: done for session {session}, expected {sid}"
                        ));
                    }
                }
                return Ok(UserOutcome {
                    user,
                    rounds: rounds as usize,
                    truncated,
                    latencies_ms,
                    wall_ms: user_started.elapsed().as_secs_f64() * 1e3,
                    conn,
                });
            }
            ServerFrame::Error { code, message, .. } => {
                return Err(format!("user {user}: server error [{code}]: {message}"));
            }
            ServerFrame::Stats { .. } => {
                return Err(format!("user {user}: unexpected stats frame"));
            }
        }
    }
}

fn send(writer: &mut TcpStream, frame: &ClientFrame) -> Result<(), String> {
    writeln!(writer, "{}", frame.to_line())
        .and_then(|_| writer.flush())
        .map_err(|e| format!("send: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_decorrelates_and_is_stable() {
        assert_eq!(mix(7, 0), mix(7, 0));
        assert_ne!(mix(7, 0), mix(7, 1));
        assert_ne!(mix(7, 0), mix(8, 0));
    }

    #[test]
    fn percentile_is_exact_on_small_sets() {
        let v = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
