//! The line-delimited JSON wire protocol.
//!
//! One frame per line, both directions. A client opens a session with
//! `hello`, the server replies with `question` frames (or `done`
//! immediately), the client echoes each question's round number back in
//! its `answer`, and the server closes the session with `done`. Anything
//! the server cannot accept yields an `error` frame scoped to the
//! offending session (or to no session for unparsable input) — the
//! connection and every other session stay live.
//!
//! **Wire-level tracing.** Every server frame carries the connection id
//! (`conn`, assigned at accept) and a request id (`req`): each accepted
//! `hello`/`answer` is a request, and the frame it produces echoes that
//! request's id. Clients *may* echo the last `req` they saw back in the
//! next `answer`; when present it must match the server's pending id for
//! the session or the answer is rejected (`req_mismatch`) — catching
//! split-brain clients that the round echo alone cannot. The pair
//! `(conn, req)` is what tags `serve_round`/`slow_round` telemetry, so
//! post-hoc `trace-report` can attribute latency per connection.
//!
//! A read-only `stats` frame snapshots the server's RED metrics (see
//! DESIGN.md §16 for the body schema); `isrl stats --connect` is a thin
//! client for it.
//!
//! ```text
//! → {"kind":"hello","algo":"ea","eps":0.1,"seed":42}
//! ← {"kind":"question","conn":1,"session":1,"round":1,"req":1,"option1":[..],"option2":[..]}
//! → {"kind":"answer","session":1,"round":1,"choice":1,"req":1}
//! ← {"kind":"done","conn":1,"session":1,"req":2,"rounds":4,"index":7,"tuple":[..],"truncated":false}
//! → {"kind":"stats"}
//! ← {"kind":"stats","conn":1,"uptime_ms":…,"sessions":{…},"round_ms":{…},…}
//! → {"kind":"shutdown"}
//! ```
//!
//! Frames are hand-rolled over [`isrl_obs::json`] — the workspace builds
//! with no serialization dependency.

use crate::serving::{choice_from_number, parse_choice, AlgoKind};
use isrl_obs::json::{self, Json};

/// A frame sent by a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Open a session.
    Hello {
        /// Which registered policy to interact with.
        algo: AlgoKind,
        /// Regret threshold ε (default 0.1).
        eps: f64,
        /// Per-session randomness seed (default 0).
        seed: u64,
    },
    /// Answer the pending question of a session.
    Answer {
        /// The session id from the `question` frame.
        session: u64,
        /// The round being answered, echoed from the `question` frame —
        /// lets the server reject answers racing a stale question.
        round: u64,
        /// `true` = the first option is preferred.
        choice: bool,
        /// Optional echo of the `question` frame's request id; when
        /// present it must match or the answer is rejected.
        req: Option<u64>,
    },
    /// Ask for a read-only RED-metrics snapshot.
    Stats {
        /// `true` adds the per-connection session breakdown.
        detail: bool,
    },
    /// Ask the server to stop accepting work and exit cleanly.
    Shutdown,
}

/// A frame sent by the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// The pending question of a session.
    Question {
        /// Connection the frame is for (assigned at accept).
        conn: u64,
        /// Session the question belongs to.
        session: u64,
        /// 1-based round number, to be echoed in the `answer`.
        round: u64,
        /// Request id of the `hello`/`answer` that produced this question;
        /// may be echoed in the next `answer`.
        req: u64,
        /// The first tuple's attribute values.
        option1: Vec<f64>,
        /// The second tuple's attribute values.
        option2: Vec<f64>,
    },
    /// The session finished; its recommendation.
    Done {
        /// Connection the frame is for.
        conn: u64,
        /// Session that finished.
        session: u64,
        /// Request id of the final `answer`.
        req: u64,
        /// Questions the user answered.
        rounds: u64,
        /// Dataset index of the recommended tuple.
        index: u64,
        /// The recommended tuple's attribute values.
        tuple: Vec<f64>,
        /// `true` when the session ended without certifying termination.
        truncated: bool,
    },
    /// A frame was rejected; the session (if any) and connection live on.
    Error {
        /// Connection the frame is for.
        conn: u64,
        /// The session the rejected frame addressed, when identifiable.
        session: Option<u64>,
        /// The client-supplied request id, when the rejected frame had one.
        req: Option<u64>,
        /// Machine-readable error kind (`parse`, `unknown_session`,
        /// `stale_round`, `req_mismatch`, `no_pending`, `open`).
        code: String,
        /// Human-readable reason.
        message: String,
    },
    /// The RED-metrics snapshot answering a `stats` request. The body is
    /// the whole frame object (schema in DESIGN.md §16).
    Stats {
        /// The full frame, `kind`/`conn` fields included.
        body: Json,
    },
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn num_field(obj: &Json, key: &str) -> Result<f64, String> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} must be a number"))
}

fn id_field(obj: &Json, key: &str) -> Result<u64, String> {
    let v = num_field(obj, key)?;
    if v.fract() == 0.0 && (0.0..9.0e15).contains(&v) {
        Ok(v as u64)
    } else {
        Err(format!("field {key:?} must be a non-negative integer"))
    }
}

fn opt_id_field(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(_) => Ok(Some(id_field(obj, key)?)),
    }
}

fn floats(value: &Json, key: &str) -> Result<Vec<f64>, String> {
    value
        .as_arr()
        .and_then(|items| items.iter().map(Json::as_f64).collect())
        .ok_or_else(|| format!("field {key:?} must be an array of numbers"))
}

fn kind_of(line: &str) -> Result<(Json, String), String> {
    let doc = json::parse(line)?;
    let kind = field(&doc, "kind")?
        .as_str()
        .ok_or_else(|| "field \"kind\" must be a string".to_string())?
        .to_string();
    Ok((doc, kind))
}

impl ClientFrame {
    /// Parses one client line. The error string becomes the `error`
    /// frame's message.
    pub fn parse(line: &str) -> Result<Self, String> {
        let (doc, kind) = kind_of(line)?;
        match kind.as_str() {
            "hello" => {
                let algo_text = field(&doc, "algo")?
                    .as_str()
                    .ok_or_else(|| "field \"algo\" must be a string".to_string())?;
                let algo = AlgoKind::parse(algo_text)
                    .ok_or_else(|| format!("unknown algorithm {algo_text:?} (want ea or aa)"))?;
                let eps = match doc.get("eps") {
                    Some(v) => v
                        .as_f64()
                        .ok_or_else(|| "field \"eps\" must be a number".to_string())?,
                    None => 0.1,
                };
                let seed = match doc.get("seed") {
                    Some(_) => id_field(&doc, "seed")?,
                    None => 0,
                };
                Ok(ClientFrame::Hello { algo, eps, seed })
            }
            "answer" => {
                let session = id_field(&doc, "session")?;
                let round = id_field(&doc, "round")?;
                let choice = match field(&doc, "choice")? {
                    Json::Num(x) => choice_from_number(*x),
                    Json::Str(s) => parse_choice(s),
                    _ => None,
                }
                .ok_or_else(|| "field \"choice\" must be 1 or 2".to_string())?;
                let req = opt_id_field(&doc, "req")?;
                Ok(ClientFrame::Answer {
                    session,
                    round,
                    choice,
                    req,
                })
            }
            "stats" => {
                let detail = match doc.get("detail") {
                    None => false,
                    Some(v) => v
                        .as_bool()
                        .ok_or_else(|| "field \"detail\" must be a bool".to_string())?,
                };
                Ok(ClientFrame::Stats { detail })
            }
            "shutdown" => Ok(ClientFrame::Shutdown),
            other => Err(format!("unknown frame kind {other:?}")),
        }
    }

    /// Serializes the frame as one line (no trailing newline).
    pub fn to_line(&self) -> String {
        let obj = match self {
            ClientFrame::Hello { algo, eps, seed } => Json::obj(vec![
                ("kind".into(), "hello".into()),
                ("algo".into(), algo.as_str().into()),
                ("eps".into(), (*eps).into()),
                ("seed".into(), (*seed).into()),
            ]),
            ClientFrame::Answer {
                session,
                round,
                choice,
                req,
            } => {
                let mut fields = vec![
                    ("kind".into(), "answer".into()),
                    ("session".into(), (*session).into()),
                    ("round".into(), (*round).into()),
                    ("choice".into(), if *choice { 1u64 } else { 2u64 }.into()),
                ];
                if let Some(r) = req {
                    fields.push(("req".into(), (*r).into()));
                }
                Json::obj(fields)
            }
            ClientFrame::Stats { detail } => {
                let mut fields = vec![("kind".into(), "stats".into())];
                if *detail {
                    fields.push(("detail".into(), true.into()));
                }
                Json::obj(fields)
            }
            ClientFrame::Shutdown => Json::obj(vec![("kind".into(), "shutdown".into())]),
        };
        obj.to_string()
    }
}

impl ServerFrame {
    /// Parses one server line (the loadgen's half of the conversation).
    pub fn parse(line: &str) -> Result<Self, String> {
        let (doc, kind) = kind_of(line)?;
        match kind.as_str() {
            "question" => Ok(ServerFrame::Question {
                conn: id_field(&doc, "conn")?,
                session: id_field(&doc, "session")?,
                round: id_field(&doc, "round")?,
                req: id_field(&doc, "req")?,
                option1: floats(field(&doc, "option1")?, "option1")?,
                option2: floats(field(&doc, "option2")?, "option2")?,
            }),
            "done" => Ok(ServerFrame::Done {
                conn: id_field(&doc, "conn")?,
                session: id_field(&doc, "session")?,
                req: id_field(&doc, "req")?,
                rounds: id_field(&doc, "rounds")?,
                index: id_field(&doc, "index")?,
                tuple: floats(field(&doc, "tuple")?, "tuple")?,
                truncated: field(&doc, "truncated")?
                    .as_bool()
                    .ok_or_else(|| "field \"truncated\" must be a bool".to_string())?,
            }),
            "error" => Ok(ServerFrame::Error {
                conn: id_field(&doc, "conn")?,
                session: opt_id_field(&doc, "session")?,
                req: opt_id_field(&doc, "req")?,
                code: field(&doc, "code")?
                    .as_str()
                    .ok_or_else(|| "field \"code\" must be a string".to_string())?
                    .to_string(),
                message: field(&doc, "message")?
                    .as_str()
                    .ok_or_else(|| "field \"message\" must be a string".to_string())?
                    .to_string(),
            }),
            "stats" => Ok(ServerFrame::Stats { body: doc }),
            other => Err(format!("unknown frame kind {other:?}")),
        }
    }

    /// Serializes the frame as one line (no trailing newline).
    pub fn to_line(&self) -> String {
        let obj = match self {
            ServerFrame::Question {
                conn,
                session,
                round,
                req,
                option1,
                option2,
            } => Json::obj(vec![
                ("kind".into(), "question".into()),
                ("conn".into(), (*conn).into()),
                ("session".into(), (*session).into()),
                ("round".into(), (*round).into()),
                ("req".into(), (*req).into()),
                ("option1".into(), option1.as_slice().into()),
                ("option2".into(), option2.as_slice().into()),
            ]),
            ServerFrame::Done {
                conn,
                session,
                req,
                rounds,
                index,
                tuple,
                truncated,
            } => Json::obj(vec![
                ("kind".into(), "done".into()),
                ("conn".into(), (*conn).into()),
                ("session".into(), (*session).into()),
                ("req".into(), (*req).into()),
                ("rounds".into(), (*rounds).into()),
                ("index".into(), (*index).into()),
                ("tuple".into(), tuple.as_slice().into()),
                ("truncated".into(), (*truncated).into()),
            ]),
            ServerFrame::Error {
                conn,
                session,
                req,
                code,
                message,
            } => Json::obj(vec![
                ("kind".into(), "error".into()),
                ("conn".into(), (*conn).into()),
                ("session".into(), session.map_or(Json::Null, |s| s.into())),
                ("req".into(), req.map_or(Json::Null, |r| r.into())),
                ("code".into(), code.as_str().into()),
                ("message".into(), message.as_str().into()),
            ]),
            ServerFrame::Stats { body } => return body.to_string(),
        };
        obj.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_frames_round_trip() {
        let frames = [
            ClientFrame::Hello {
                algo: AlgoKind::Ea,
                eps: 0.1,
                seed: 42,
            },
            ClientFrame::Answer {
                session: 3,
                round: 7,
                choice: true,
                req: None,
            },
            ClientFrame::Answer {
                session: 3,
                round: 8,
                choice: false,
                req: Some(19),
            },
            ClientFrame::Stats { detail: false },
            ClientFrame::Stats { detail: true },
            ClientFrame::Shutdown,
        ];
        for f in frames {
            assert_eq!(ClientFrame::parse(&f.to_line()).unwrap(), f);
        }
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = [
            ServerFrame::Question {
                conn: 2,
                session: 1,
                round: 1,
                req: 11,
                option1: vec![1.0, 0.05],
                option2: vec![0.4, 0.85],
            },
            ServerFrame::Done {
                conn: 2,
                session: 1,
                req: 15,
                rounds: 4,
                index: 2,
                tuple: vec![0.6, 0.65],
                truncated: false,
            },
            ServerFrame::Error {
                conn: 2,
                session: None,
                req: None,
                code: "parse".into(),
                message: "unknown frame kind \"zap\"".into(),
            },
            ServerFrame::Error {
                conn: 2,
                session: Some(9),
                req: Some(31),
                code: "req_mismatch".into(),
                message: "request id 31 does not match".into(),
            },
        ];
        for f in frames {
            assert_eq!(ServerFrame::parse(&f.to_line()).unwrap(), f);
        }
    }

    #[test]
    fn stats_reply_round_trips_as_opaque_body() {
        let line = r#"{"kind":"stats","conn":3,"uptime_ms":12.5,"sessions":{"active":2}}"#;
        let f = ServerFrame::parse(line).unwrap();
        match &f {
            ServerFrame::Stats { body } => {
                assert_eq!(
                    body.get("conn").and_then(Json::as_f64),
                    Some(3.0),
                    "body keeps all fields"
                );
            }
            other => panic!("expected stats frame, got {other:?}"),
        }
        assert_eq!(ServerFrame::parse(&f.to_line()).unwrap(), f);
    }

    #[test]
    fn hello_defaults_apply() {
        let f = ClientFrame::parse(r#"{"kind":"hello","algo":"aa"}"#).unwrap();
        assert_eq!(
            f,
            ClientFrame::Hello {
                algo: AlgoKind::Aa,
                eps: 0.1,
                seed: 0,
            }
        );
    }

    #[test]
    fn answer_accepts_string_choice_and_optional_req() {
        let f =
            ClientFrame::parse(r#"{"kind":"answer","session":1,"round":1,"choice":"2"}"#).unwrap();
        assert_eq!(
            f,
            ClientFrame::Answer {
                session: 1,
                round: 1,
                choice: false,
                req: None,
            }
        );
        let f = ClientFrame::parse(r#"{"kind":"answer","session":1,"round":1,"choice":1,"req":4}"#)
            .unwrap();
        assert_eq!(
            f,
            ClientFrame::Answer {
                session: 1,
                round: 1,
                choice: true,
                req: Some(4),
            }
        );
    }

    #[test]
    fn malformed_client_lines_are_rejected() {
        for bad in [
            "",
            "{",
            r#"{"kind":"hello","algo":"ea""#,
            "[1,2]",
            r#"{"algo":"ea"}"#,
            r#"{"kind":"zap"}"#,
            r#"{"kind":"hello","algo":"xx"}"#,
            r#"{"kind":"hello","algo":"ea","eps":"hot"}"#,
            r#"{"kind":"answer","round":1,"choice":1}"#,
            r#"{"kind":"answer","session":1,"round":1,"choice":3}"#,
            r#"{"kind":"answer","session":1,"round":1,"choice":"maybe"}"#,
            r#"{"kind":"answer","session":-1,"round":1,"choice":1}"#,
            r#"{"kind":"answer","session":1.5,"round":1,"choice":1}"#,
            r#"{"kind":"answer","session":1,"round":1,"choice":1,"req":-2}"#,
            r#"{"kind":"answer","session":1,"round":1,"choice":1,"req":0.5}"#,
            r#"{"kind":"stats","detail":1}"#,
            r#"{"kind":"stats","detail":"yes"}"#,
        ] {
            assert!(ClientFrame::parse(bad).is_err(), "must reject {bad:?}");
        }
    }
}
