//! The session table and the cross-user scan batcher.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::serving::{AlgoKind, ServeError, ServePolicy, ServeSession};
use isrl_data::Dataset;

/// Counters of the cross-user batcher's work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// `top1_batch` calls issued.
    pub calls: u64,
    /// Calls that coalesced scans from two or more sessions — the whole
    /// point of the batcher; the CI smoke test asserts this is nonzero
    /// under concurrent load.
    pub coalesced: u64,
    /// Session-scans served (one session's pending scan, any size).
    pub sessions_scanned: u64,
    /// Individual utility vectors scanned.
    pub utilities: u64,
}

/// Holds the live [`ServeSession`]s behind one shared dataset and policy
/// set, and pumps their pending dataset scans as coalesced
/// [`Dataset::top1_batch`] calls.
///
/// Batching is behavior-preserving because the scan is exact and
/// per-utility independent: each session receives exactly the top-1
/// results it would have computed alone, so question sequences are
/// independent of who else is being served (the session-isolation
/// differential test pins this).
pub struct SessionRegistry {
    data: Arc<Dataset>,
    policies: Vec<Arc<ServePolicy>>,
    sessions: BTreeMap<u64, ServeSession>,
    next_id: u64,
    batching: bool,
    stats: BatchStats,
}

impl SessionRegistry {
    /// An empty registry over `data`, with batching enabled.
    pub fn new(data: Arc<Dataset>) -> Self {
        Self {
            data,
            policies: Vec::new(),
            sessions: BTreeMap::new(),
            next_id: 1,
            batching: true,
            stats: BatchStats::default(),
        }
    }

    /// Disables (or re-enables) scan coalescing; sessions then scan one by
    /// one. Exists for the differential tests — batched and unbatched
    /// serving must be indistinguishable to every session.
    pub fn set_batching(&mut self, on: bool) {
        self.batching = on;
    }

    /// The shared dataset.
    pub fn data(&self) -> &Arc<Dataset> {
        &self.data
    }

    /// Registers a policy, replacing any previous one of the same
    /// algorithm.
    ///
    /// # Panics
    /// Panics on a policy/dataset dimension mismatch — a deployment error
    /// caught at startup, not per-session.
    pub fn register(&mut self, policy: Arc<ServePolicy>) {
        assert_eq!(
            policy.dim(),
            self.data.dim(),
            "policy/dataset dimension mismatch"
        );
        self.policies.retain(|p| p.algo() != policy.algo());
        self.policies.push(policy);
    }

    /// The registered policy for `algo`, if any.
    pub fn policy(&self, algo: AlgoKind) -> Option<&Arc<ServePolicy>> {
        self.policies.iter().find(|p| p.algo() == algo)
    }

    /// Opens a session on the registered `algo` policy and returns its id.
    /// The new session has a scan pending — it yields its first question
    /// (or finishes) on the next [`pump`](Self::pump).
    pub fn open(&mut self, algo: AlgoKind, eps: f64, seed: u64) -> Result<u64, ServeError> {
        let policy = self
            .policies
            .iter()
            .find(|p| p.algo() == algo)
            .cloned()
            .ok_or(ServeError::UnsupportedAlgorithm(algo))?;
        let session = ServeSession::new(policy, Arc::clone(&self.data), eps, seed)?;
        let id = self.next_id;
        self.next_id += 1;
        self.sessions.insert(id, session);
        isrl_obs::gauge_set("serve.active_sessions", self.sessions.len() as u64);
        Ok(id)
    }

    /// The session behind `id`, if live.
    pub fn session(&self, id: u64) -> Option<&ServeSession> {
        self.sessions.get(&id)
    }

    /// Delivers a user's answer to session `id`.
    pub fn answer(&mut self, id: u64, prefers_first: bool) -> Result<(), ServeError> {
        self.sessions
            .get_mut(&id)
            .ok_or(ServeError::UnknownSession(id))?
            .answer(prefers_first)
    }

    /// Removes and returns session `id` (typically once finished).
    pub fn close(&mut self, id: u64) -> Option<ServeSession> {
        let removed = self.sessions.remove(&id);
        if removed.is_some() {
            isrl_obs::gauge_set("serve.active_sessions", self.sessions.len() as u64);
        }
        removed
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no session is live.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Cumulative batcher counters.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Serves every pending scan once: takes all waiting utility vectors
    /// (in session-id order), answers them — coalesced into a single
    /// `top1_batch` call when batching is on — and hands each session its
    /// slice. Returns the number of sessions scanned; EA sessions on the
    /// exact backend need two pumps per round, so drivers loop via
    /// [`pump_all`](Self::pump_all).
    pub fn pump(&mut self) -> usize {
        let mut pending: Vec<(u64, Vec<Vec<f64>>)> = Vec::new();
        for (&id, session) in self.sessions.iter_mut() {
            if let Some(utilities) = session.take_scan_utilities() {
                pending.push((id, utilities));
            }
        }
        if pending.is_empty() {
            return 0;
        }
        if self.batching {
            let flat: Vec<&Vec<f64>> = pending.iter().flat_map(|(_, u)| u.iter()).collect();
            let top1 = {
                let _t = isrl_obs::span("top1");
                self.data.top1_batch(&flat)
            };
            self.record_call(pending.len(), flat.len());
            let mut offset = 0;
            for (id, utilities) in &pending {
                let slice = &top1[offset..offset + utilities.len()];
                offset += utilities.len();
                self.sessions
                    .get_mut(id)
                    .expect("pending session vanished mid-pump")
                    .provide_scan(utilities, slice);
            }
        } else {
            for (id, utilities) in &pending {
                let top1 = {
                    let _t = isrl_obs::span("top1");
                    self.data.top1_batch(utilities)
                };
                self.record_call(1, utilities.len());
                self.sessions
                    .get_mut(id)
                    .expect("pending session vanished mid-pump")
                    .provide_scan(utilities, &top1);
            }
        }
        pending.len()
    }

    /// Pumps until no scan is pending (at most two iterations deep per
    /// round — EA's exact backend). Returns the total session-scans
    /// served.
    pub fn pump_all(&mut self) -> usize {
        let mut total = 0;
        loop {
            let n = self.pump();
            if n == 0 {
                return total;
            }
            total += n;
        }
    }

    fn record_call(&mut self, sessions: usize, utilities: usize) {
        self.stats.calls += 1;
        self.stats.sessions_scanned += sessions as u64;
        self.stats.utilities += utilities as u64;
        isrl_obs::add("serve.batch.calls", 1);
        isrl_obs::add("serve.batch.sessions", sessions as u64);
        isrl_obs::add("serve.batch.utilities", utilities as u64);
        // Live gauge: how many sessions shared this batch window — the
        // snapshotter's timeseries shows coalescing *during* a run, not
        // just in the shutdown stats.
        isrl_obs::gauge_set("serve.batch.window_occupancy", sessions as u64);
        if sessions >= 2 {
            self.stats.coalesced += 1;
            isrl_obs::add("serve.batch.coalesced", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ea::{EaAgent, EaConfig};
    use isrl_linalg::vector;

    fn data() -> Arc<Dataset> {
        Arc::new(Dataset::from_points(
            vec![
                vec![1.0, 0.05],
                vec![0.85, 0.4],
                vec![0.6, 0.65],
                vec![0.4, 0.85],
                vec![0.05, 1.0],
            ],
            2,
        ))
    }

    #[test]
    fn registry_serves_concurrent_sessions_to_completion() {
        let data = data();
        let mut registry = SessionRegistry::new(Arc::clone(&data));
        registry.register(Arc::new(ServePolicy::Ea(EaAgent::new(
            2,
            EaConfig::paper_default().with_seed(3),
        ))));
        let truths = [vec![0.3, 0.7], vec![0.55, 0.45], vec![0.8, 0.2]];
        let ids: Vec<u64> = (0..truths.len())
            .map(|u| registry.open(AlgoKind::Ea, 0.1, 40 + u as u64).unwrap())
            .collect();

        let mut done = 0;
        while done < ids.len() {
            registry.pump_all();
            done = 0;
            for (id, truth) in ids.iter().zip(&truths) {
                let session = registry.session(*id).unwrap();
                if session.is_finished() {
                    done += 1;
                } else if let Some((p, q)) = session
                    .current_points()
                    .map(|(a, b)| (a.to_vec(), b.to_vec()))
                {
                    let prefers = vector::dot(truth, &p) >= vector::dot(truth, &q);
                    registry.answer(*id, prefers).unwrap();
                }
            }
        }
        let stats = registry.stats();
        assert!(
            stats.coalesced > 0,
            "three in-lockstep sessions must coalesce: {stats:?}"
        );
        assert!(stats.utilities > stats.sessions_scanned);
        for id in ids {
            let s = registry.close(id).unwrap();
            assert!(s.recommendation().is_some());
            assert!(!s.truncated());
        }
        assert!(registry.is_empty());
    }

    #[test]
    fn open_rejects_missing_policy_and_bad_eps() {
        let mut registry = SessionRegistry::new(data());
        assert_eq!(
            registry.open(AlgoKind::Aa, 0.1, 1),
            Err(ServeError::UnsupportedAlgorithm(AlgoKind::Aa))
        );
        registry.register(Arc::new(ServePolicy::Ea(EaAgent::new(
            2,
            EaConfig::paper_default(),
        ))));
        assert_eq!(
            registry.open(AlgoKind::Ea, 0.0, 1),
            Err(ServeError::BadEpsilon(0.0))
        );
        assert_eq!(
            registry.answer(99, true),
            Err(ServeError::UnknownSession(99))
        );
    }
}
