//! Regret ratios (§III of the paper).

use isrl_data::Dataset;
use isrl_linalg::vector;

/// The regret ratio of point `q` over dataset `data` w.r.t. utility vector
/// `u`:
///
/// ```text
/// regratio(q, u) = (max_p f_u(p) − f_u(q)) / max_p f_u(p)
/// ```
///
/// Zero means `q` *is* the user's favorite; values are clamped at 0 from
/// below against floating-point jitter.
///
/// # Panics
/// Panics on an empty dataset or a non-positive maximum utility (cannot
/// happen for `(0, 1]`-normalized data with a simplex utility vector).
pub fn regret_ratio(data: &Dataset, q: &[f64], u: &[f64]) -> f64 {
    let best = data.max_utility(u);
    assert!(
        best > 0.0,
        "maximum utility must be positive on normalized data"
    );
    ((best - vector::dot(q, u)) / best).max(0.0)
}

/// [`regret_ratio`] by dataset index.
pub fn regret_ratio_of_index(data: &Dataset, q_index: usize, u: &[f64]) -> f64 {
    regret_ratio(data, data.point(q_index), u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table3() -> Dataset {
        Dataset::from_points(
            vec![
                vec![0.001, 1.0],
                vec![0.3, 0.7],
                vec![0.5, 0.8],
                vec![0.7, 0.4],
                vec![1.0, 0.001],
            ],
            2,
        )
    }

    #[test]
    fn example2_of_the_paper() {
        // regratio(p2, (0.3, 0.7)) = (0.71 − 0.58)/0.71 ≈ 0.183.
        let d = table3();
        let r = regret_ratio_of_index(&d, 1, &[0.3, 0.7]);
        assert!((r - (0.71 - 0.58) / 0.71).abs() < 1e-9, "got {r}");
    }

    #[test]
    fn favorite_point_has_zero_regret() {
        let d = table3();
        let u = [0.3, 0.7];
        let best = d.argmax_utility(&u);
        assert_eq!(regret_ratio_of_index(&d, best, &u), 0.0);
    }

    #[test]
    fn regret_is_in_unit_interval() {
        let d = table3();
        for i in 0..d.len() {
            for u in [[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]] {
                let r = regret_ratio_of_index(&d, i, &u);
                assert!((0.0..=1.0).contains(&r), "regret {r} out of range");
            }
        }
    }

    #[test]
    fn regret_decreases_as_point_improves() {
        let d = table3();
        let u = [0.3, 0.7];
        // p4 (index 3) is worse than p2 (index 1) under this u.
        assert!(regret_ratio_of_index(&d, 3, &u) > regret_ratio_of_index(&d, 1, &u));
    }
}
