//! Training-health watchdog.
//!
//! [`TrainingWatchdog`] rides along `train()` in EA and AA, observing each
//! episode's mean TD loss, exploration rate, and replay occupancy, and
//! flags the failure modes that silently ruin long DRL runs:
//!
//! * **non-finite loss** — NaN/∞ episode loss (poisoned learning rate,
//!   numerical blow-up in the network);
//! * **loss explosion** — a finite loss that dwarfs the recent median
//!   (divergence that has not yet overflowed);
//! * **epsilon stall** — a schedule that was decaying and then froze above
//!   its floor (a broken step counter; the paper's constant-ε schedule
//!   never trips this because it never decays);
//! * **replay starvation** — the buffer still cannot fill one minibatch
//!   well after warm-up, so no gradient step ever runs.
//!
//! Each kind latches on first detection: it emits one `anomaly` event
//! (DESIGN.md §13) and bumps the `train.anomalies` counter, which is in
//! `isrl_obs::schema::WARNING_COUNTERS` — so `trace-validate` turns any
//! tripped watchdog into a hard warning on the whole trace. Detection
//! logic always runs (a few comparisons per episode); emission is gated on
//! the sink like all telemetry.

use std::collections::VecDeque;

use isrl_obs::Event;

/// Warning counter bumped once per detected anomaly kind.
pub const ANOMALY_COUNTER: &str = "train.anomalies";

/// Thresholds of [`TrainingWatchdog`]; `default()` is tuned to the paper's
/// training regime (episode losses near `reward_c²` early on, constant-ε
/// exploration) so healthy runs stay silent.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Finite-loss window the explosion test compares against.
    pub loss_window: usize,
    /// A loss this many times the window median is an explosion.
    pub explode_factor: f64,
    /// Losses at or below this are never explosions (quiet near zero).
    pub explode_floor: f64,
    /// Consecutive frozen-ε episodes (after any decay) that mean a stall.
    pub stall_window: usize,
    /// ε at or below this is a legitimate resting point, not a stall.
    pub epsilon_floor: f64,
    /// Episodes of warm-up before replay starvation can fire.
    pub starvation_after: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            loss_window: 16,
            explode_factor: 100.0,
            explode_floor: 1.0,
            stall_window: 24,
            epsilon_floor: 0.05,
            starvation_after: 12,
        }
    }
}

/// The failure mode an [`Anomaly`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Episode mean TD loss is NaN or infinite.
    NonfiniteLoss,
    /// Finite loss far above the recent median.
    LossExplosion,
    /// A decaying ε schedule froze above its floor.
    EpsilonStall,
    /// Replay buffer below one minibatch after warm-up.
    ReplayStarvation,
}

impl AnomalyKind {
    /// The `kind` string used in `anomaly` events.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::NonfiniteLoss => "nonfinite_loss",
            Self::LossExplosion => "loss_explosion",
            Self::EpsilonStall => "epsilon_stall",
            Self::ReplayStarvation => "replay_starvation",
        }
    }
}

/// One detected training anomaly.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// What failed.
    pub kind: AnomalyKind,
    /// Episode index at detection.
    pub episode: u64,
    /// The offending value (loss, ε, or replay length).
    pub value: f64,
    /// Human-readable one-liner.
    pub detail: String,
}

/// Per-training-run anomaly detector; see the module docs.
#[derive(Debug)]
pub struct TrainingWatchdog {
    algo: &'static str,
    cfg: WatchdogConfig,
    batch_size: usize,
    losses: VecDeque<f64>,
    prev_epsilon: Option<f64>,
    epsilon_decayed: bool,
    frozen_run: usize,
    episodes_seen: usize,
    anomalies: Vec<Anomaly>,
}

impl TrainingWatchdog {
    /// A watchdog for one `train()` call. `batch_size` is the minibatch
    /// the replay buffer must be able to fill.
    pub fn new(algo: &'static str, batch_size: usize) -> Self {
        Self::with_config(algo, batch_size, WatchdogConfig::default())
    }

    /// A watchdog with explicit thresholds.
    pub fn with_config(algo: &'static str, batch_size: usize, cfg: WatchdogConfig) -> Self {
        Self {
            algo,
            cfg,
            batch_size,
            losses: VecDeque::new(),
            prev_epsilon: None,
            epsilon_decayed: false,
            frozen_run: 0,
            episodes_seen: 0,
            anomalies: Vec::new(),
        }
    }

    /// Anomalies detected so far, in detection order.
    pub fn anomalies(&self) -> &[Anomaly] {
        &self.anomalies
    }

    fn tripped(&self, kind: AnomalyKind) -> bool {
        self.anomalies.iter().any(|a| a.kind == kind)
    }

    fn flag(&mut self, kind: AnomalyKind, episode: u64, value: f64, detail: String) {
        if self.tripped(kind) {
            return;
        }
        isrl_obs::add(ANOMALY_COUNTER, 1);
        isrl_obs::emit(
            Event::new("anomaly")
                .field("algo", self.algo)
                .field("kind", kind.as_str())
                .field("episode", episode)
                .field("value", value)
                .field("detail", detail.clone()),
        );
        self.anomalies.push(Anomaly {
            kind,
            episode,
            value,
            detail,
        });
    }

    fn median_loss(&self) -> f64 {
        let mut v: Vec<f64> = self.losses.iter().copied().collect();
        v.sort_by(f64::total_cmp);
        v[(v.len() - 1) / 2]
    }

    /// Feeds one finished episode. `loss` is the episode's mean TD loss
    /// (`None` until the replay buffer can fill a minibatch).
    pub fn observe(&mut self, episode: u64, epsilon: f64, replay_len: usize, loss: Option<f64>) {
        self.episodes_seen += 1;

        if let Some(l) = loss {
            if !l.is_finite() {
                self.flag(
                    AnomalyKind::NonfiniteLoss,
                    episode,
                    l,
                    format!("episode mean TD loss is {l} — training is poisoned"),
                );
            } else {
                if self.losses.len() >= self.cfg.loss_window && l > self.cfg.explode_floor {
                    let med = self.median_loss();
                    if l > self.cfg.explode_factor * med.max(f64::MIN_POSITIVE) {
                        self.flag(
                            AnomalyKind::LossExplosion,
                            episode,
                            l,
                            format!(
                                "loss {l:.3e} is over {}x the recent median {med:.3e}",
                                self.cfg.explode_factor
                            ),
                        );
                    }
                }
                self.losses.push_back(l);
                while self.losses.len() > self.cfg.loss_window {
                    self.losses.pop_front();
                }
            }
        }

        if let Some(prev) = self.prev_epsilon {
            if epsilon < prev - 1e-12 {
                self.epsilon_decayed = true;
                self.frozen_run = 0;
            } else if (epsilon - prev).abs() <= 1e-12 {
                self.frozen_run += 1;
            } else {
                self.frozen_run = 0;
            }
        }
        self.prev_epsilon = Some(epsilon);
        if self.epsilon_decayed
            && epsilon > self.cfg.epsilon_floor
            && self.frozen_run >= self.cfg.stall_window
        {
            self.flag(
                AnomalyKind::EpsilonStall,
                episode,
                epsilon,
                format!(
                    "epsilon froze at {epsilon:.4} for {} episodes mid-decay",
                    self.frozen_run
                ),
            );
        }

        if self.episodes_seen > self.cfg.starvation_after && replay_len < self.batch_size {
            self.flag(
                AnomalyKind::ReplayStarvation,
                episode,
                replay_len as f64,
                format!(
                    "replay holds {replay_len} transitions after {} episodes (batch {})",
                    self.episodes_seen, self.batch_size
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dog() -> TrainingWatchdog {
        TrainingWatchdog::new("EA", 8)
    }

    #[test]
    fn healthy_run_stays_silent() {
        let mut w = dog();
        for ep in 0..200u64 {
            // Constant paper-style epsilon, decaying loss, filling replay.
            let loss = 100.0 / (1.0 + ep as f64);
            w.observe(ep, 0.9, (ep as usize + 1) * 4, Some(loss));
        }
        assert!(w.anomalies().is_empty(), "{:?}", w.anomalies());
    }

    #[test]
    fn nan_loss_trips_immediately_and_latches() {
        let mut w = dog();
        w.observe(0, 0.9, 64, Some(f64::NAN));
        w.observe(1, 0.9, 64, Some(f64::INFINITY));
        let a = w.anomalies();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].kind, AnomalyKind::NonfiniteLoss);
        assert_eq!(a[0].episode, 0);
    }

    #[test]
    fn loss_explosion_needs_a_full_window() {
        let mut w = dog();
        // A huge early loss is normal (no window yet): no flag.
        w.observe(0, 0.9, 64, Some(1e6));
        assert!(w.anomalies().is_empty());
        for ep in 1..=20u64 {
            w.observe(ep, 0.9, 64, Some(2.0));
        }
        assert!(w.anomalies().is_empty());
        w.observe(21, 0.9, 64, Some(2.0 * 150.0));
        assert_eq!(w.anomalies().len(), 1);
        assert_eq!(w.anomalies()[0].kind, AnomalyKind::LossExplosion);
    }

    #[test]
    fn constant_epsilon_never_stalls_but_frozen_decay_does() {
        let mut w = dog();
        for ep in 0..100u64 {
            w.observe(ep, 0.9, 64, Some(1.0));
        }
        assert!(w.anomalies().is_empty(), "constant schedule is legitimate");

        let mut w = dog();
        // Decay for a while, then freeze well above the floor.
        for ep in 0..10u64 {
            w.observe(ep, 0.9 - 0.05 * ep as f64, 64, Some(1.0));
        }
        for ep in 10..60u64 {
            w.observe(ep, 0.45, 64, Some(1.0));
        }
        assert_eq!(w.anomalies().len(), 1);
        assert_eq!(w.anomalies()[0].kind, AnomalyKind::EpsilonStall);
    }

    #[test]
    fn frozen_at_the_floor_is_fine() {
        let mut w = dog();
        for ep in 0..30u64 {
            let eps = (0.9 - 0.05 * ep as f64).max(0.05);
            w.observe(ep, eps, 64, Some(1.0));
        }
        for ep in 30..120u64 {
            w.observe(ep, 0.05, 64, Some(1.0));
        }
        assert!(w.anomalies().is_empty(), "{:?}", w.anomalies());
    }

    #[test]
    fn replay_starvation_fires_after_warmup_only() {
        let mut w = dog();
        for ep in 0..12u64 {
            w.observe(ep, 0.9, 3, None);
        }
        assert!(w.anomalies().is_empty(), "warm-up grace period");
        w.observe(12, 0.9, 3, None);
        assert_eq!(w.anomalies().len(), 1);
        assert_eq!(w.anomalies()[0].kind, AnomalyKind::ReplayStarvation);
    }
}
