//! DQN validation on a deterministic chain MDP with a known optimal policy
//! and known optimal Q-values — the strongest cheap correctness check for
//! the replay/target-network/bootstrap plumbing.
//!
//! The environment: states 0..N on a line; actions "left"/"right"; "right"
//! from state N−1 reaches the terminal goal with reward R; everything else
//! pays 0. Optimal policy: always right. Optimal values:
//! `Q*(s, right) = R·γ^(N−1−s)`, `Q*(s, left) = γ·Q*(max(s−1,0), right)`.

use isrl_rl::{Dqn, DqnConfig, EpsilonSchedule, NextState, Transition};

const N: usize = 5;
const GOAL_REWARD: f64 = 10.0;
const GAMMA: f64 = 0.8;

fn state_vec(s: usize) -> Vec<f64> {
    let mut v = vec![0.0; N];
    v[s] = 1.0;
    v
}

const LEFT: [f64; 2] = [1.0, 0.0];
const RIGHT: [f64; 2] = [0.0, 1.0];

/// One environment step: (next_state, reward, terminal).
fn step(s: usize, right: bool) -> (usize, f64, bool) {
    if right {
        if s + 1 == N {
            (s, GOAL_REWARD, true)
        } else {
            (s + 1, 0.0, false)
        }
    } else {
        (s.saturating_sub(1), 0.0, false)
    }
}

fn optimal_q_right(s: usize) -> f64 {
    GOAL_REWARD * GAMMA.powi((N - 1 - s) as i32)
}

fn train_on_chain(episodes: usize, seed: u64) -> Dqn {
    let mut cfg = DqnConfig::paper_default(N, 2).with_seed(seed);
    cfg.lr = 0.02;
    cfg.gamma = GAMMA;
    cfg.batch_size = 32;
    cfg.target_sync_every = 25;
    cfg.use_adam = true; // squeeze the small budget
    let mut dqn = Dqn::new(cfg);
    let schedule = EpsilonSchedule::linear(1.0, 0.1, (episodes * N) as u64);
    let mut step_count = 0u64;
    for _ in 0..episodes {
        let mut s = 0usize;
        for _ in 0..4 * N {
            let actions = vec![LEFT.to_vec(), RIGHT.to_vec()];
            let eps = schedule.value(step_count);
            step_count += 1;
            let a = dqn.select_action(&state_vec(s), &actions, eps);
            let right = a == 1;
            let (s2, r, terminal) = step(s, right);
            dqn.push_transition(Transition {
                state: state_vec(s),
                action: if right { RIGHT.to_vec() } else { LEFT.to_vec() },
                reward: r,
                next: if terminal {
                    None
                } else {
                    Some(NextState {
                        state: state_vec(s2),
                        actions: vec![LEFT.to_vec(), RIGHT.to_vec()],
                    })
                },
            });
            dqn.train_step();
            if terminal {
                break;
            }
            s = s2;
        }
    }
    dqn.sync_target();
    dqn
}

#[test]
fn learns_the_optimal_policy() {
    let mut dqn = train_on_chain(300, 11);
    for s in 0..N {
        let (best, _) = dqn.best_action(&state_vec(s), &[LEFT.to_vec(), RIGHT.to_vec()]);
        assert_eq!(best, 1, "state {s}: optimal action is right");
    }
}

#[test]
fn q_values_approach_the_analytic_optimum() {
    let mut dqn = train_on_chain(600, 13);
    for s in 0..N {
        let q = dqn.q_value(&state_vec(s), &RIGHT);
        let q_star = optimal_q_right(s);
        assert!(
            (q - q_star).abs() < 0.25 * GOAL_REWARD,
            "state {s}: Q {q:.2} vs Q* {q_star:.2}"
        );
    }
    // Values must increase monotonically toward the goal.
    for s in 0..N - 1 {
        let near = dqn.q_value(&state_vec(s + 1), &RIGHT);
        let far = dqn.q_value(&state_vec(s), &RIGHT);
        assert!(
            near > far,
            "Q should grow toward the goal: {far:.2} !< {near:.2} at {s}"
        );
    }
}

#[test]
fn greedy_rollout_reaches_the_goal_quickly() {
    let mut dqn = train_on_chain(300, 17);
    let mut s = 0usize;
    for steps in 0..2 * N {
        let (a, _) = dqn.best_action(&state_vec(s), &[LEFT.to_vec(), RIGHT.to_vec()]);
        let (s2, r, terminal) = step(s, a == 1);
        if terminal {
            assert_eq!(r, GOAL_REWARD);
            assert!(steps <= N, "optimal path is N−1 steps, took {steps}");
            return;
        }
        s = s2;
    }
    panic!("greedy policy never reached the goal");
}
