//! Experience replay memory.
//!
//! The paper trains both agents with DQN + experience replay (§IV-B2):
//! transitions `(s, a, r, s')` land in a bounded ring buffer (capacity 5,000
//! in the paper's setup) and gradient steps sample uniformly from it. One
//! wrinkle of this problem's MDP: the action set is *per-state* (the m_h
//! candidate pairs), so a stored transition must carry the successor state's
//! candidate actions too — otherwise `max_a' Q(s', a')` cannot be evaluated
//! at replay time.

use bytes::{Buf, BufMut};
use rand::Rng;
use std::collections::VecDeque;

/// One stored transition of the interaction MDP.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State features at decision time.
    pub state: Vec<f64>,
    /// Features of the action taken (the question's point pair, `2d` numbers).
    pub action: Vec<f64>,
    /// Immediate reward (the paper: `c` on reaching a terminal state, else 0).
    pub reward: f64,
    /// Successor: `None` when terminal, else the next state's features and
    /// the candidate-action features available there.
    pub next: Option<NextState>,
}

/// The successor side of a [`Transition`].
#[derive(Debug, Clone, PartialEq)]
pub struct NextState {
    /// Next state features.
    pub state: Vec<f64>,
    /// Candidate action features at the next state (non-empty).
    pub actions: Vec<Vec<f64>>,
}

impl Transition {
    /// Compact binary encoding (little-endian f64s with u32 lengths) for
    /// checkpointing replay buffers across training sessions.
    pub fn encode(&self, buf: &mut impl BufMut) {
        fn put_vec(buf: &mut impl BufMut, v: &[f64]) {
            buf.put_u32_le(v.len() as u32);
            for &x in v {
                buf.put_f64_le(x);
            }
        }
        put_vec(buf, &self.state);
        put_vec(buf, &self.action);
        buf.put_f64_le(self.reward);
        match &self.next {
            None => buf.put_u8(0),
            Some(n) => {
                buf.put_u8(1);
                put_vec(buf, &n.state);
                buf.put_u32_le(n.actions.len() as u32);
                for a in &n.actions {
                    put_vec(buf, a);
                }
            }
        }
    }

    /// Inverse of [`Transition::encode`]. Returns `None` on truncated input.
    pub fn decode(buf: &mut impl Buf) -> Option<Self> {
        fn get_vec(buf: &mut impl Buf) -> Option<Vec<f64>> {
            if buf.remaining() < 4 {
                return None;
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len * 8 {
                return None;
            }
            Some((0..len).map(|_| buf.get_f64_le()).collect())
        }
        let state = get_vec(buf)?;
        let action = get_vec(buf)?;
        if buf.remaining() < 9 {
            return None;
        }
        let reward = buf.get_f64_le();
        let next = match buf.get_u8() {
            0 => None,
            _ => {
                let nstate = get_vec(buf)?;
                if buf.remaining() < 4 {
                    return None;
                }
                let count = buf.get_u32_le() as usize;
                let mut actions = Vec::with_capacity(count);
                for _ in 0..count {
                    actions.push(get_vec(buf)?);
                }
                Some(NextState {
                    state: nstate,
                    actions,
                })
            }
        };
        Some(Transition {
            state,
            action,
            reward,
            next,
        })
    }
}

/// Bounded uniform-sampling replay buffer.
#[derive(Debug, Clone)]
pub struct ReplayMemory {
    capacity: usize,
    buffer: VecDeque<Transition>,
}

impl ReplayMemory {
    /// Creates a memory holding at most `capacity` transitions.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            capacity,
            buffer: VecDeque::with_capacity(capacity.min(8_192)),
        }
    }

    /// Stores a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
        }
        self.buffer.push_back(t);
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// `true` iff nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Maximum number of stored transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples `batch` transitions uniformly with replacement. Returns an
    /// empty vector when the memory is empty.
    pub fn sample<R: Rng + ?Sized>(&self, batch: usize, rng: &mut R) -> Vec<&Transition> {
        if self.buffer.is_empty() {
            return Vec::new();
        }
        (0..batch)
            .map(|_| &self.buffer[rng.gen_range(0..self.buffer.len())])
            .collect()
    }

    /// Serializes the whole buffer (for checkpointing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_u32_le(self.buffer.len() as u32);
        for t in &self.buffer {
            t.encode(&mut out);
        }
        out
    }

    /// Restores a buffer serialized by [`ReplayMemory::encode`] into a
    /// memory with the given capacity (extra transitions beyond the
    /// capacity are dropped oldest-first). Returns `None` on corrupt input.
    pub fn decode(mut bytes: &[u8], capacity: usize) -> Option<Self> {
        if bytes.remaining() < 4 {
            return None;
        }
        let count = bytes.get_u32_le() as usize;
        let mut mem = Self::new(capacity);
        for _ in 0..count {
            mem.push(Transition::decode(&mut bytes)?);
        }
        Some(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(r: f64, terminal: bool) -> Transition {
        Transition {
            state: vec![0.1, 0.2],
            action: vec![0.3, 0.4, 0.5, 0.6],
            reward: r,
            next: if terminal {
                None
            } else {
                Some(NextState {
                    state: vec![0.7, 0.8],
                    actions: vec![vec![1.0; 4], vec![2.0; 4]],
                })
            },
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut m = ReplayMemory::new(3);
        for i in 0..5 {
            m.push(t(i as f64, false));
        }
        assert_eq!(m.len(), 3);
        let mut rng = StdRng::seed_from_u64(1);
        let rewards: Vec<f64> = m.sample(100, &mut rng).iter().map(|t| t.reward).collect();
        assert!(
            rewards.iter().all(|&r| r >= 2.0),
            "old transitions must be gone"
        );
    }

    #[test]
    fn sample_is_empty_when_memory_is_empty() {
        let m = ReplayMemory::new(5);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(m.sample(10, &mut rng).is_empty());
    }

    #[test]
    fn sample_covers_contents() {
        let mut m = ReplayMemory::new(10);
        for i in 0..10 {
            m.push(t(i as f64, false));
        }
        let mut rng = StdRng::seed_from_u64(3);
        let seen: std::collections::HashSet<u64> = m
            .sample(500, &mut rng)
            .iter()
            .map(|t| t.reward as u64)
            .collect();
        assert!(
            seen.len() >= 9,
            "uniform sampling should hit nearly all slots"
        );
    }

    #[test]
    fn transition_binary_round_trip() {
        for original in [t(1.5, false), t(100.0, true)] {
            let mut buf = Vec::new();
            original.encode(&mut buf);
            let decoded = Transition::decode(&mut buf.as_slice()).unwrap();
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        t(1.0, false).encode(&mut buf);
        for cut in [1, buf.len() / 2, buf.len() - 1] {
            assert!(
                Transition::decode(&mut &buf[..cut]).is_none(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn memory_round_trip_respects_capacity() {
        let mut m = ReplayMemory::new(8);
        for i in 0..6 {
            m.push(t(i as f64, i % 2 == 0));
        }
        let bytes = m.encode();
        let back = ReplayMemory::decode(&bytes, 8).unwrap();
        assert_eq!(back.len(), 6);
        let tiny = ReplayMemory::decode(&bytes, 2).unwrap();
        assert_eq!(tiny.len(), 2, "decode into smaller capacity keeps newest");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        ReplayMemory::new(0);
    }
}
