//! Deep Q-learning over per-state candidate action sets.
//!
//! The interaction MDP of the paper has a *state-dependent* discrete action
//! set: at each round the agent chooses among `m_h` candidate questions
//! constructed for the current utility range (§IV-B/§IV-C). The Q-function
//! is therefore modeled as a scorer `Q(s, a; Θ)` over the concatenation of
//! state and action features, evaluated once per candidate, rather than as
//! a fixed-width output head.
//!
//! Training follows Algorithms 1/3: ε-greedy rollouts fill an experience
//! replay, minibatches minimize the MSE toward bootstrapped targets
//! `r + γ max_{a'} Q̂(s', a'; Θ')`, and the target network Θ' is re-synced
//! from the main network every `target_sync_every` updates.

use crate::replay::{ReplayMemory, Transition};
use isrl_nn::{loss, Activation, Adam, Gradients, Init, Mlp, Optimizer, Sgd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of a [`Dqn`]. `paper_default` matches §V of the paper.
#[derive(Debug, Clone)]
pub struct DqnConfig {
    /// Width of the state feature vector.
    pub state_dim: usize,
    /// Width of an action feature vector.
    pub action_dim: usize,
    /// Hidden-layer widths (the paper: one layer of 64).
    pub hidden: Vec<usize>,
    /// Learning rate for plain gradient descent (the paper: 0.003).
    pub lr: f64,
    /// Discount factor γ (the paper: 0.8).
    pub gamma: f64,
    /// Replay memory capacity (the paper: 5,000).
    pub replay_capacity: usize,
    /// Minibatch size (the paper: 64).
    pub batch_size: usize,
    /// Sync the target network every this many gradient updates (the paper: 20).
    pub target_sync_every: u64,
    /// Optional global-norm gradient clip (stabilizer; `None` = off).
    pub grad_clip: Option<f64>,
    /// Use Adam instead of the paper's plain gradient descent (an
    /// optimization-quality knob for low-budget training runs).
    pub use_adam: bool,
    /// RNG seed for weight init, exploration, and replay sampling.
    pub seed: u64,
}

impl DqnConfig {
    /// The paper's §V hyper-parameters for the given feature widths.
    pub fn paper_default(state_dim: usize, action_dim: usize) -> Self {
        Self {
            state_dim,
            action_dim,
            hidden: vec![64],
            lr: 0.003,
            gamma: 0.8,
            replay_capacity: 5_000,
            batch_size: 64,
            target_sync_every: 20,
            grad_clip: Some(10.0),
            use_adam: false,
            seed: 0,
        }
    }

    /// Returns the config with a different seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A Deep-Q-Network agent with target network and experience replay.
#[derive(Debug, Clone)]
pub struct Dqn {
    cfg: DqnConfig,
    q: Mlp,
    target: Mlp,
    replay: ReplayMemory,
    sgd: Sgd,
    adam: Adam,
    updates: u64,
    rng: StdRng,
    scratch: Vec<f64>,
}

impl Dqn {
    /// Builds the main and target networks per the config.
    ///
    /// # Panics
    /// Panics on zero feature widths or an empty hidden spec.
    pub fn new(cfg: DqnConfig) -> Self {
        assert!(
            cfg.state_dim > 0 && cfg.action_dim > 0,
            "feature widths must be positive"
        );
        assert!(
            !cfg.hidden.is_empty(),
            "at least one hidden layer is required"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut sizes = Vec::with_capacity(cfg.hidden.len() + 2);
        sizes.push(cfg.state_dim + cfg.action_dim);
        sizes.extend_from_slice(&cfg.hidden);
        sizes.push(1);
        let q = Mlp::new(&sizes, Activation::Selu, Init::LecunNormal, &mut rng);
        let target = q.clone();
        let replay = ReplayMemory::new(cfg.replay_capacity);
        let sgd = Sgd { lr: cfg.lr };
        let adam = Adam::new(cfg.lr);
        let scratch = vec![0.0; cfg.state_dim + cfg.action_dim];
        Self {
            cfg,
            q,
            target,
            replay,
            sgd,
            adam,
            updates: 0,
            rng,
            scratch,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.cfg
    }

    /// Gradient updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Transitions currently in replay.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    fn encode_into(scratch: &mut [f64], state: &[f64], action: &[f64]) {
        scratch[..state.len()].copy_from_slice(state);
        scratch[state.len()..].copy_from_slice(action);
    }

    /// `Q(s, a; Θ)` from the main network.
    ///
    /// # Panics
    /// Panics on feature-width mismatch.
    pub fn q_value(&mut self, state: &[f64], action: &[f64]) -> f64 {
        assert_eq!(state.len(), self.cfg.state_dim, "state width mismatch");
        assert_eq!(action.len(), self.cfg.action_dim, "action width mismatch");
        Self::encode_into(&mut self.scratch, state, action);
        self.q.forward(&self.scratch)[0]
    }

    /// Index and value of the greedy (highest-Q) action among `actions`.
    ///
    /// # Panics
    /// Panics on an empty action set.
    pub fn best_action(&mut self, state: &[f64], actions: &[Vec<f64>]) -> (usize, f64) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let best = self.best_action_ref(&mut scratch, state, actions);
        self.scratch = scratch;
        best
    }

    /// [`Dqn::best_action`] without mutable access to the network: the
    /// caller supplies the encoding scratch buffer (resized as needed).
    /// This is what lets many concurrent serving sessions evaluate one
    /// shared checkpoint — each session owns a scratch buffer while the
    /// `Dqn` itself stays behind an immutable reference.
    ///
    /// # Panics
    /// Panics on an empty action set or feature-width mismatch.
    pub fn best_action_ref(
        &self,
        scratch: &mut Vec<f64>,
        state: &[f64],
        actions: &[Vec<f64>],
    ) -> (usize, f64) {
        assert!(!actions.is_empty(), "cannot pick from an empty action set");
        assert_eq!(state.len(), self.cfg.state_dim, "state width mismatch");
        scratch.resize(self.cfg.state_dim + self.cfg.action_dim, 0.0);
        let mut best = (0usize, f64::NEG_INFINITY);
        for (i, a) in actions.iter().enumerate() {
            assert_eq!(a.len(), self.cfg.action_dim, "action width mismatch");
            Self::encode_into(scratch, state, a);
            let v = self.q.forward(scratch)[0];
            if v > best.1 {
                best = (i, v);
            }
        }
        best
    }

    /// ε-greedy selection: with probability `epsilon` pick a uniform random
    /// candidate, otherwise the greedy one.
    pub fn select_action(&mut self, state: &[f64], actions: &[Vec<f64>], epsilon: f64) -> usize {
        assert!(!actions.is_empty(), "cannot pick from an empty action set");
        if self.rng.gen_range(0.0..1.0) < epsilon {
            self.rng.gen_range(0..actions.len())
        } else {
            self.best_action(state, actions).0
        }
    }

    /// Stores a transition in the replay memory.
    pub fn push_transition(&mut self, t: Transition) {
        self.replay.push(t);
    }

    /// One minibatch gradient step (Algorithm 1, line 19). Returns the batch
    /// MSE loss, or `None` when fewer than `batch_size` transitions are
    /// stored yet. The target network is synced automatically every
    /// `target_sync_every` updates (line 20).
    pub fn train_step(&mut self) -> Option<f64> {
        if self.replay.len() < self.cfg.batch_size {
            return None;
        }
        let _span = isrl_obs::span("dqn_train");
        isrl_obs::add("dqn.train_steps", 1);
        // Sample indices first so the borrow of replay ends before training.
        let batch: Vec<Transition> = self
            .replay
            .sample(self.cfg.batch_size, &mut self.rng)
            .into_iter()
            .cloned()
            .collect();

        let gamma = self.cfg.gamma;
        let mut total = Gradients::zeros_like(&self.q);
        let mut loss_acc = 0.0;
        for t in &batch {
            // Bootstrapped target from the frozen network.
            let y = match &t.next {
                None => t.reward,
                Some(n) => {
                    debug_assert!(!n.actions.is_empty(), "successor had no actions");
                    // Plain max(): a NaN-poisoned network leaves `best` at
                    // -inf, the loss goes non-finite, and the training
                    // watchdog — not an assert — reports the blow-up.
                    let mut best = f64::NEG_INFINITY;
                    for a in &n.actions {
                        Self::encode_into(&mut self.scratch, &n.state, a);
                        best = best.max(self.target.forward(&self.scratch)[0]);
                    }
                    t.reward + gamma * best
                }
            };
            Self::encode_into(&mut self.scratch, &t.state, &t.action);
            let (pred, cache) = self.q.forward_cached(&self.scratch);
            let dloss = loss::mse_grad(&pred, &[y]);
            loss_acc += loss::mse(&pred, &[y]);
            total.accumulate(&self.q.backward(&cache, &dloss));
        }
        total.scale(1.0 / batch.len() as f64);
        if let Some(clip) = self.cfg.grad_clip {
            total.clip_norm(clip);
        }
        if self.cfg.use_adam {
            self.adam.step(&mut self.q, &total);
        } else {
            self.sgd.step(&mut self.q, &total);
        }
        self.updates += 1;
        if self.updates % self.cfg.target_sync_every == 0 {
            self.target.copy_params_from(&self.q);
            isrl_obs::add("dqn.target_syncs", 1);
        }
        let loss = loss_acc / batch.len() as f64;
        if !loss.is_finite() {
            isrl_obs::add("dqn.nonfinite_loss", 1);
        }
        isrl_obs::record("dqn.loss", loss);
        Some(loss)
    }

    /// Forces a target-network sync (used at the end of training).
    pub fn sync_target(&mut self) {
        self.target.copy_params_from(&self.q);
    }

    /// Read-only access to the main network (serialization, inspection).
    pub fn network(&self) -> &Mlp {
        &self.q
    }

    /// Replaces the main network's parameters (checkpoint restore) and syncs
    /// the target network to match.
    pub fn load_params(&mut self, flat: &[f64]) {
        self.q.from_flat(flat);
        self.sync_target();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::NextState;

    /// A 1-step bandit: two candidate actions, action [1,0] pays 1, [0,1]
    /// pays 0. The DQN should learn to rank them within a few hundred steps.
    #[test]
    fn dqn_learns_a_trivial_bandit() {
        let mut cfg = DqnConfig::paper_default(1, 2).with_seed(3);
        cfg.batch_size = 16;
        cfg.lr = 0.01;
        let mut dqn = Dqn::new(cfg);
        let state = vec![0.5];
        let good = vec![1.0, 0.0];
        let bad = vec![0.0, 1.0];
        for _ in 0..200 {
            dqn.push_transition(Transition {
                state: state.clone(),
                action: good.clone(),
                reward: 1.0,
                next: None,
            });
            dqn.push_transition(Transition {
                state: state.clone(),
                action: bad.clone(),
                reward: 0.0,
                next: None,
            });
            dqn.train_step();
        }
        let (idx, _) = dqn.best_action(&state, &[bad.clone(), good.clone()]);
        assert_eq!(idx, 1, "agent should prefer the rewarded action");
        assert!(dqn.q_value(&state, &good) > dqn.q_value(&state, &bad));
    }

    /// A 2-step chain: s0 --a--> s1 --a--> terminal(+10). Q(s0) should
    /// approach γ·10 and Q(s1) → 10, verifying the bootstrapped target.
    #[test]
    fn dqn_propagates_value_through_bootstrap() {
        let mut cfg = DqnConfig::paper_default(2, 1).with_seed(5);
        cfg.batch_size = 8;
        cfg.lr = 0.02;
        cfg.gamma = 0.8;
        cfg.target_sync_every = 5;
        let mut dqn = Dqn::new(cfg);
        let s0 = vec![1.0, 0.0];
        let s1 = vec![0.0, 1.0];
        let a = vec![1.0];
        for _ in 0..400 {
            dqn.push_transition(Transition {
                state: s0.clone(),
                action: a.clone(),
                reward: 0.0,
                next: Some(NextState {
                    state: s1.clone(),
                    actions: vec![a.clone()],
                }),
            });
            dqn.push_transition(Transition {
                state: s1.clone(),
                action: a.clone(),
                reward: 10.0,
                next: None,
            });
            dqn.train_step();
        }
        dqn.sync_target();
        let q1 = dqn.q_value(&s1, &a);
        let q0 = dqn.q_value(&s0, &a);
        assert!(
            (q1 - 10.0).abs() < 1.5,
            "Q(s1) should approach 10, got {q1}"
        );
        assert!(
            (q0 - 8.0).abs() < 1.5,
            "Q(s0) should approach γ·10 = 8, got {q0}"
        );
    }

    #[test]
    fn train_step_waits_for_enough_data() {
        let mut dqn = Dqn::new(DqnConfig::paper_default(1, 1));
        assert!(dqn.train_step().is_none());
        assert_eq!(dqn.updates(), 0);
    }

    #[test]
    fn epsilon_one_explores_uniformly() {
        let mut dqn = Dqn::new(DqnConfig::paper_default(1, 1).with_seed(7));
        let actions = vec![vec![0.0], vec![1.0], vec![2.0]];
        let mut seen = [0usize; 3];
        for _ in 0..300 {
            seen[dqn.select_action(&[0.5], &actions, 1.0)] += 1;
        }
        assert!(
            seen.iter().all(|&c| c > 50),
            "all actions explored: {seen:?}"
        );
    }

    #[test]
    fn epsilon_zero_is_greedy() {
        let mut dqn = Dqn::new(DqnConfig::paper_default(1, 1).with_seed(8));
        let actions = vec![vec![0.1], vec![0.9]];
        let greedy = dqn.best_action(&[0.5], &actions).0;
        for _ in 0..20 {
            assert_eq!(dqn.select_action(&[0.5], &actions, 0.0), greedy);
        }
    }

    #[test]
    fn checkpoint_round_trip_preserves_q_values() {
        let mut a = Dqn::new(DqnConfig::paper_default(2, 2).with_seed(9));
        let flat = a.network().to_flat();
        let mut b = Dqn::new(DqnConfig::paper_default(2, 2).with_seed(10));
        b.load_params(&flat);
        let s = [0.3, 0.7];
        let act = [0.5, 0.5];
        assert_eq!(a.q_value(&s, &act), b.q_value(&s, &act));
    }

    #[test]
    #[should_panic(expected = "empty action set")]
    fn best_action_rejects_empty_set() {
        let mut dqn = Dqn::new(DqnConfig::paper_default(1, 1));
        dqn.best_action(&[0.0], &[]);
    }
}
