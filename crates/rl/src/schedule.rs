//! Exploration schedules for ε-greedy action selection.
//!
//! The paper fixes ε = 0.9 during training (§V) — [`EpsilonSchedule::constant`]
//! reproduces that — and the linear-decay variant is the standard refinement
//! used in the ablation benches.

/// An ε-greedy exploration schedule mapping a training step to ε ∈ [0, 1].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EpsilonSchedule {
    /// Fixed exploration rate (the paper's setting: 0.9).
    Constant(f64),
    /// Linear decay from `start` to `end` over `steps` steps, then `end`.
    Linear {
        /// ε at step 0.
        start: f64,
        /// ε after the decay completes.
        end: f64,
        /// Number of steps over which to decay.
        steps: u64,
    },
}

impl EpsilonSchedule {
    /// Constant schedule.
    ///
    /// # Panics
    /// Panics if `eps` is outside [0, 1].
    pub fn constant(eps: f64) -> Self {
        assert!((0.0..=1.0).contains(&eps), "epsilon must be in [0, 1]");
        Self::Constant(eps)
    }

    /// The paper's training exploration rate.
    pub fn paper_default() -> Self {
        Self::Constant(0.9)
    }

    /// Linear decay schedule.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or zero steps.
    pub fn linear(start: f64, end: f64, steps: u64) -> Self {
        assert!((0.0..=1.0).contains(&start) && (0.0..=1.0).contains(&end));
        assert!(steps > 0, "decay needs at least one step");
        Self::Linear { start, end, steps }
    }

    /// ε at the given training step.
    pub fn value(&self, step: u64) -> f64 {
        match *self {
            Self::Constant(e) => e,
            Self::Linear { start, end, steps } => {
                if step >= steps {
                    end
                } else {
                    start + (end - start) * (step as f64 / steps as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = EpsilonSchedule::constant(0.9);
        assert_eq!(s.value(0), 0.9);
        assert_eq!(s.value(1_000_000), 0.9);
    }

    #[test]
    fn paper_default_is_point_nine() {
        assert_eq!(EpsilonSchedule::paper_default().value(42), 0.9);
    }

    #[test]
    fn linear_interpolates_and_clamps() {
        let s = EpsilonSchedule::linear(1.0, 0.1, 100);
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(50) - 0.55).abs() < 1e-12);
        assert_eq!(s.value(100), 0.1);
        assert_eq!(s.value(10_000), 0.1);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn rejects_out_of_range() {
        EpsilonSchedule::constant(1.5);
    }
}
