#![warn(missing_docs)]
//! Deep-Q-learning framework for the interaction MDP.
//!
//! Implements the reinforcement-learning machinery of the paper's §IV-B2:
//! experience replay ([`replay`]), ε-greedy exploration schedules
//! ([`schedule`]), and a DQN with a target network ([`dqn`]) whose
//! Q-function scores (state ⊕ action-feature) pairs — the natural fit for
//! this problem's per-state candidate action sets.
//!
//! ```
//! use isrl_rl::{Dqn, DqnConfig, Transition};
//!
//! let mut dqn = Dqn::new(DqnConfig::paper_default(2, 1));
//! // Feed a rewarded terminal transition until a batch is available.
//! for _ in 0..64 {
//!     dqn.push_transition(Transition {
//!         state: vec![0.5, 0.5],
//!         action: vec![1.0],
//!         reward: 100.0,
//!         next: None,
//!     });
//! }
//! let loss = dqn.train_step().expect("batch is full");
//! assert!(loss.is_finite());
//! assert_eq!(dqn.updates(), 1);
//! ```

pub mod dqn;
pub mod replay;
pub mod schedule;

pub use dqn::{Dqn, DqnConfig};
pub use replay::{NextState, ReplayMemory, Transition};
pub use schedule::EpsilonSchedule;
