//! Offline micro-benchmark harness, source-compatible with the subset of
//! the `criterion` API this workspace uses (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`).
//!
//! Measurement model: per benchmark, a short warm-up sizes the iteration
//! batch, then `sample_size` timed batches run within the measurement
//! budget. Mean/min/max per-iteration times are printed to stdout and
//! appended to `target/criterion-offline.jsonl` so runs leave a machine-
//! readable artifact behind (the upstream HTML machinery is out of scope
//! offline).
//!
//! `--test` (passed by `cargo test` to bench targets) switches to a
//! run-once smoke mode; a positional CLI argument filters benchmarks by
//! substring, like upstream.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
    smoke: bool,
}

impl Bencher<'_> {
    /// Times `f`, recording per-iteration seconds into the run's samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            black_box(f());
            self.samples.push(0.0);
            return;
        }
        // Warm-up: run once to estimate cost and pull code/data into cache.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);

        let budget = self.measurement_time.as_secs_f64();
        let per_sample = budget / self.sample_size as f64;
        let iters = (per_sample / once).clamp(1.0, 1e7) as u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(600),
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    settings: Settings,
    filter: Option<String>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut smoke = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                "--bench" => {}
                a if a.starts_with('-') => {} // ignore unknown flags
                a => filter = Some(a.to_string()),
            }
        }
        Self {
            settings: Settings::default(),
            filter,
            smoke,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let settings = self.settings;
        self.run_one(&id.into().to_string(), settings, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(&mut self, full_id: &str, s: Settings, mut f: F) {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples = Vec::with_capacity(s.sample_size);
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: s.sample_size.max(1),
            measurement_time: s.measurement_time,
            smoke: self.smoke,
        };
        f(&mut b);
        if self.smoke {
            println!("{full_id}: ok (smoke)");
            return;
        }
        if samples.is_empty() {
            println!("{full_id}: no samples recorded");
            return;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{full_id:<48} time: [{} {} {}]",
            fmt_secs(min),
            fmt_secs(mean),
            fmt_secs(max)
        );
        append_record(full_id, mean, min, max);
    }
}

/// A group of benchmarks sharing settings and a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into());
        let settings = self.settings;
        self.criterion.run_one(&full, settings, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        let settings = self.settings;
        self.criterion.run_one(&full, settings, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; no-op offline).
    pub fn finish(self) {}
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn append_record(id: &str, mean: f64, min: f64, max: f64) {
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("target/criterion-offline.jsonl")
    else {
        return; // benches may run from a read-only checkout; results were printed
    };
    let _ = writeln!(
        f,
        "{{\"id\":\"{}\",\"mean_s\":{mean:e},\"min_s\":{min:e},\"max_s\":{max:e}}}",
        id.replace('"', "'")
    );
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("d4").to_string(), "d4");
    }

    #[test]
    fn bencher_records_samples() {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: 3,
            measurement_time: Duration::from_millis(5),
            smoke: false,
        };
        b.iter(|| black_box(2u64.pow(10)));
        assert_eq!(samples.len(), 3);
        assert!(samples.iter().all(|&s| s >= 0.0));
    }
}
