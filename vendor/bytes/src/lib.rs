//! Offline subset of the `bytes` crate: the `Buf`/`BufMut` traits over
//! `&[u8]` / `Vec<u8>`, little-endian accessors only — exactly what the
//! replay-memory and checkpoint codecs use.

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "Buf: not enough bytes remaining");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst)
    }
}

/// Write sink for bytes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f64_le(-2.5);
        let mut rd: &[u8] = &buf;
        assert_eq!(rd.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(rd.get_u8(), 7);
        assert_eq!(rd.get_u16_le(), 513);
        assert_eq!(rd.get_u32_le(), 70_000);
        assert_eq!(rd.get_u64_le(), 1 << 40);
        assert_eq!(rd.get_f64_le(), -2.5);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "not enough bytes")]
    fn underflow_panics() {
        let mut rd: &[u8] = &[1, 2];
        rd.get_u32_le();
    }
}
