//! Offline marker-trait subset of `serde`.
//!
//! No serializer backend ships in this workspace (checkpoints use the
//! hand-rolled binary codec in `isrl-core::checkpoint`), so `Serialize` and
//! `Deserialize` are marker traits: deriving them documents intent and keeps
//! the public API source-compatible with upstream serde for when a real
//! backend is vendored later.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize {}
