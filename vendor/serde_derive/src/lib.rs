//! Derive macros for the vendored `serde` stub.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as marker
//! derives (no serializer backend is wired up offline), so both derives
//! emit the corresponding marker-trait impl and nothing else.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type identifier following `struct`/`enum` in a derive input.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    match type_name(&input) {
        // Generic types would need bound plumbing; no workspace type derives
        // serde on a generic container, so plain impls suffice.
        Some(name) => format!("impl ::serde::{trait_name} for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}

/// Marker `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// Marker `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}
