//! Offline subset of `parking_lot`: `Mutex`/`RwLock` with the
//! non-poisoning, `Result`-free locking API, backed by `std::sync`.
//! A poisoned std lock is recovered transparently — parking_lot semantics.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock with the `Result`-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5usize);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
