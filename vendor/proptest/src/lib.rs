//! Offline property-testing harness, source-compatible with the subset of
//! the `proptest` API this workspace uses: the `proptest!` macro (with
//! `#![proptest_config(...)]`), range strategies over floats and integers,
//! tuple strategies, `prop::collection::vec`, `.prop_map`,
//! `proptest::string::string_regex`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: inputs are generated from a deterministic
//! per-test RNG (seeded from the test name) rather than an entropy source,
//! and failing cases are reported without shrinking. Each macro-generated
//! test runs `ProptestConfig::cases` random cases and panics on the first
//! failure with the case index and the generated-input message.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of an associated type.
    pub trait Strategy {
        type Value;

        /// Draws one value from this strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = self.end - self.start;
                    self.start + rng.unit_f64() as $t * span
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + rng.unit_f64() as $t * (hi - lo)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f64, f32);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = hi - lo + 1;
                    (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

pub mod test_runner {
    use std::fmt;

    /// Number of random cases each `proptest!` test executes.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// Applies the `PROPTEST_CASES` environment variable: when set to a
        /// positive integer it overrides the configured case count, matching
        /// upstream proptest's env-driven configuration. Invalid or unset
        /// values leave the config unchanged. The `proptest!` macro calls
        /// this on every config, so `PROPTEST_CASES=512 cargo test` deepens
        /// all property suites without code changes.
        pub fn from_env(self) -> Self {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => match v.trim().parse::<u32>() {
                    Ok(n) if n > 0 => Self { cases: n },
                    _ => self,
                },
                Err(_) => self,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property within one generated case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-test RNG (SplitMix64). Seeded from the test name so
    /// every run of a given test explores the same case sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (typically `stringify!(test_name)`).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, then mix so short names diverge quickly.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut rng = Self { state: h };
            rng.next_u64();
            rng
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "TestRng::below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy yielding `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span.max(1)).min(span - 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt;

    /// Regex-pattern rejection for [`string_regex`].
    #[derive(Debug)]
    pub struct Error(String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    /// One parsed regex atom: an alphabet plus a repetition count range.
    #[derive(Clone, Debug)]
    struct Atom {
        alphabet: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strategy over strings matching a restricted regex subset: literal
    /// characters and character classes (`[a-z0-9 ,]`), each optionally
    /// followed by `{min,max}`, `*`, `+`, or `?`.
    #[derive(Clone, Debug)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let count = atom.min + rng.below(atom.max - atom.min + 1);
                for _ in 0..count {
                    out.push(atom.alphabet[rng.below(atom.alphabet.len())]);
                }
            }
            out
        }
    }

    /// Builds a string strategy from a regex-like pattern. Supports the
    /// subset documented on [`RegexGeneratorStrategy`]; anything else
    /// returns `Err`.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let alphabet = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or_else(|| Error(pattern.into()))?
                        + i;
                    let alphabet = parse_class(&chars[i + 1..close])?;
                    i = close + 1;
                    alphabet
                }
                '\\' => {
                    let c = *chars.get(i + 1).ok_or_else(|| Error(pattern.into()))?;
                    i += 2;
                    vec![c]
                }
                c if "(){}*+?|^$.".contains(c) => return Err(Error(pattern.into())),
                c => {
                    i += 1;
                    vec![c]
                }
            };
            if alphabet.is_empty() {
                return Err(Error(pattern.into()));
            }
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or_else(|| Error(pattern.into()))?
                        + i;
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    parse_repeat(&spec).ok_or_else(|| Error(pattern.into()))?
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            if min > max {
                return Err(Error(pattern.into()));
            }
            atoms.push(Atom { alphabet, min, max });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    fn parse_class(body: &[char]) -> Result<Vec<char>, Error> {
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if body[i] == '\\' {
                let c = *body
                    .get(i + 1)
                    .ok_or_else(|| Error(body.iter().collect()))?;
                alphabet.push(c);
                i += 2;
            } else if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                if lo > hi {
                    return Err(Error(body.iter().collect()));
                }
                alphabet.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                alphabet.push(body[i]);
                i += 1;
            }
        }
        Ok(alphabet)
    }

    fn parse_repeat(spec: &str) -> Option<(usize, usize)> {
        match spec.split_once(',') {
            // Open-ended repeats are capped at 16 for bounded generation.
            Some((lo, "")) => Some((lo.trim().parse().ok()?, 16)),
            Some((lo, hi)) => Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?)),
            None => {
                let n = spec.trim().parse().ok()?;
                Some((n, n))
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the upstream `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any number
/// of `#[test] fn name(pat in strategy, ...) { body }` items. Each test
/// runs `config.cases` deterministic random cases; `prop_assert!`-family
/// failures abort the run with the case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let config = config.from_env();
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case}/{} failed: {e}", config.cases);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner (early-returns a
/// `TestCaseError` instead of panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges_respect_bounds");
        for _ in 0..200 {
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let n = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&n));
            let m = (2i32..=5).generate(&mut rng);
            assert!((2..=5).contains(&m));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::deterministic("vec_strategy_respects_length_range");
        for _ in 0..100 {
            let v = prop::collection::vec(0.0f64..1.0, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
        let fixed = prop::collection::vec(0.0f64..1.0, 4).generate(&mut rng);
        assert_eq!(fixed.len(), 4);
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::deterministic("prop_map_and_tuples_compose");
        let s = ((0.1f64..1.0, 0.1f64..1.0), 1usize..4).prop_map(|((a, b), n)| (a + b, n));
        for _ in 0..50 {
            let (sum, n) = s.generate(&mut rng);
            assert!(sum > 0.2 && sum < 2.0);
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn string_regex_matches_class_and_repeat() {
        let mut rng = TestRng::deterministic("string_regex_matches_class_and_repeat");
        let s = crate::string::string_regex("[a-c0-1 ,\"']{0,12}").expect("valid regex");
        for _ in 0..100 {
            let text = s.generate(&mut rng);
            assert!(text.len() <= 12);
            assert!(text.chars().all(|c| "abc01 ,\"'".contains(c)));
        }
    }

    #[test]
    fn env_override_rewrites_the_case_count() {
        // Other tests in this binary tolerate any case count, so briefly
        // mutating the process env here is safe.
        std::env::set_var("PROPTEST_CASES", "17");
        assert_eq!(ProptestConfig::with_cases(64).from_env().cases, 17);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(ProptestConfig::with_cases(64).from_env().cases, 64);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(ProptestConfig::with_cases(64).from_env().cases, 64);
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        let mut c = TestRng::deterministic("other");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_checks(
            v in prop::collection::vec(0.0f64..1.0, 1..10),
            k in 0usize..100,
        ) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
            prop_assert_eq!(k % 100, k);
        }
    }
}
