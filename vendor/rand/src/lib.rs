//! Offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! The workspace builds in environments with no access to crates.io, so the
//! handful of `rand` APIs the ISRL crates use are provided here, backed by a
//! xoshiro256++ generator seeded through SplitMix64. The streams differ from
//! upstream `rand`'s `StdRng`, but every consumer in this workspace only
//! relies on determinism-under-seed and uniformity, never on exact streams.

pub mod rngs;

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface: everything in this workspace seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Deterministically constructs a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// `u64` word to a uniform `f64` in `[0, 1)` (53-bit mantissa path).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Marker for types [`Rng::gen_range`] can sample.
pub trait SampleUniform: PartialOrd + Copy {}

/// A range that can produce a single uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let x = unit_f64(rng.next_u64()) as $t;
                self.start + x * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // 53-bit draw mapped onto the closed interval.
                let x = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + x * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f64, f32);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.01f64..1.0);
            assert!((0.01..1.0).contains(&x));
            let n = rng.gen_range(0usize..7);
            assert!(n < 7);
            let m = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&m));
            let s = rng.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&s));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut buckets = [0usize; 10];
        for _ in 0..n {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            let frac = b as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }
}
