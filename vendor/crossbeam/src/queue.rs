//! Concurrent queues. `SegQueue` here is a mutex-protected `VecDeque`
//! rather than a lock-free segment list — identical semantics, and the
//! sweep workloads pop coarse work items (whole interaction runs), so the
//! lock is never contended enough to matter.

use std::collections::VecDeque;
use std::sync::Mutex;

/// An unbounded MPMC FIFO queue.
#[derive(Debug, Default)]
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends an element at the back.
    pub fn push(&self, value: T) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(value);
    }

    /// Removes the front element, `None` when empty.
    pub fn pop(&self) -> Option<T> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    /// `true` when no elements are queued.
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_drain_sees_every_item() {
        let q = SegQueue::new();
        for i in 0..1000 {
            q.push(i);
        }
        let total = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(x) = q.pop() {
                        total.fetch_add(x, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.into_inner(), 999 * 1000 / 2);
    }
}
