//! Offline subset of `crossbeam`: scoped threads (backed by
//! `std::thread::scope`) and an unbounded MPMC queue. API-compatible with
//! the call patterns used in this workspace.

pub mod queue;

use std::any::Any;

/// A scope handle passed to [`scope`] closures; spawn borrows non-`'static`
/// data for the duration of the scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a scope argument for
    /// crossbeam compatibility; nested spawning is not supported by this
    /// stub, so the argument is `()` (call sites use `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// joins them all before returning.
///
/// Upstream crossbeam returns `Err` when a child panicked; `std::thread::scope`
/// instead propagates the panic after joining, so the `Ok` here is only
/// reached when every child completed — callers' `.expect(...)` still
/// type-checks and never fires spuriously.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize, 2, 3, 4];
        scope(|s| {
            for &x in &data {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(x, Ordering::SeqCst);
                });
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
